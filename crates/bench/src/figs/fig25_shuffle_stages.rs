//! Figure 25: effect of the number of shuffler stages.
//!
//! With ~1M partitions a single-stage shuffle touches one output chunk
//! per partition and loses all cache locality; too many stages copy
//! the data unnecessarily often. The paper finds a two-stage shuffle
//! optimal for RMAT scale 25 with 2^20 partitions. The harness forces
//! a large partition count and sweeps the fanout so the multi-stage
//! plan uses 1..5 stages, reporting runtimes normalized to one stage.

use std::time::Duration;

use crate::{Effort, Table};
use xstream_algorithms::{bfs, pagerank, spmv, wcc};
use xstream_core::EngineConfig;
use xstream_graph::datasets::rmat_scale;
use xstream_graph::EdgeList;
use xstream_storage::shuffle::MultiStagePlan;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Stages the plan executes.
    pub stages: usize,
    /// Fanout forcing that stage count.
    pub fanout: usize,
    /// Runtimes: BFS, SpMV, PageRank, WCC (paper series order).
    pub runtime: [Duration; 4],
}

fn series(g: &EdgeList, k: usize, fanout: usize, threads: usize) -> [Duration; 4] {
    let cfg = || {
        EngineConfig::default()
            .with_threads(threads)
            .with_partitions(k)
            .with_shuffle_fanout(fanout)
    };
    let (_, s_bfs) = bfs::bfs_in_memory(g, g.max_out_degree_vertex(), cfg());
    let (_, it) = spmv::spmv_in_memory(g, cfg());
    let (_, s_pr) = pagerank::pagerank_in_memory(g, 5, cfg());
    let (_, s_wcc) = wcc::wcc_in_memory(g, cfg());
    [
        s_bfs.elapsed(),
        Duration::from_nanos(it.total_ns()),
        s_pr.elapsed(),
        s_wcc.elapsed(),
    ]
}

/// Partition count forced by the sweep (the paper forces 2^20). The
/// single-stage penalty only appears once the per-partition write
/// cursors and landing sites overflow the cache, so the forced count
/// must be large relative to the LLC.
pub fn forced_partitions(effort: Effort) -> usize {
    match effort {
        Effort::Smoke => 1 << 8,
        Effort::Quick => 1 << 17,
        Effort::Full => 1 << 20,
    }
}

/// Runs the sweep over stage counts 1..=5.
pub fn run(effort: Effort) -> Vec<Point> {
    let g = rmat_scale(effort.rmat_scale().max(10));
    let threads = effort.thread_sweep().last().copied().unwrap_or(1);
    let k = forced_partitions(effort)
        .min(g.num_vertices())
        .next_power_of_two();
    let bits = k.trailing_zeros() as usize;
    (1..=5usize)
        .filter_map(|stages| {
            // Fanout giving `stages` levels: F = 2^ceil(bits/stages).
            let fanout = 1usize << bits.div_ceil(stages);
            let plan = MultiStagePlan::new(k, fanout);
            (plan.stages as usize == stages).then(|| Point {
                stages,
                fanout,
                runtime: series(&g, k, fanout, threads),
            })
        })
        .collect()
}

/// Renders the figure as a table normalized to the one-stage shuffle.
pub fn report(effort: Effort) -> String {
    let pts = run(effort);
    let mut t = Table::new(
        format!(
            "Fig 25: multi-stage shuffling, {} partitions (normalized to 1 stage)",
            forced_partitions(effort)
        )
        .as_str(),
    )
    .header(&["stages", "fanout", "BFS", "SpMV", "Pagerank", "WCC"]);
    let base = pts
        .first()
        .map(|p| p.runtime)
        .unwrap_or([Duration::from_nanos(1); 4]);
    for p in &pts {
        let norm = |i: usize| {
            format!(
                "{:.2}",
                p.runtime[i].as_secs_f64() / base[i].as_secs_f64().max(1e-12)
            )
        };
        t.row(&[
            p.stages.to_string(),
            p.fanout.to_string(),
            norm(0),
            norm(1),
            norm(2),
            norm(3),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_multiple_stage_counts() {
        let pts = run(Effort::Smoke);
        assert!(pts.len() >= 2);
        assert_eq!(pts[0].stages, 1);
        // Stage counts are strictly increasing.
        assert!(pts.windows(2).all(|w| w[0].stages < w[1].stages));
    }
}
