//! Figure 17: recomputing WCC on a growing graph.
//!
//! The paper ingests the Twitter edge list in 330M-edge batches into
//! an initially empty graph, recomputing weakly connected components
//! after each batch: because X-Stream starts from an unordered edge
//! list, ingestion is a cheap append + shuffle, and recomputation
//! starts from the previous labels, so even the last batch recomputes
//! in ~7 minutes versus ~20 minutes from scratch. The harness replays
//! this protocol on the Twitter stand-in: warm-started recompute per
//! batch, modeled on the paper's SSD (the paper capped RAM so the
//! graph lived on SSD).

use crate::figs::{cleanup, temp_store, ModeledRuntime};
use crate::{fmt_duration, Effort, Table};
use xstream_algorithms::wcc;
use xstream_core::{Engine, EngineConfig};
use xstream_disk::DiskEngine;
use xstream_graph::datasets::by_name;
use xstream_graph::EdgeList;

/// One measured ingestion step.
#[derive(Debug, Clone, Copy)]
pub struct Step {
    /// Edges accumulated after this batch.
    pub accumulated_edges: usize,
    /// Warm-started WCC recomputation time (modeled SSD).
    pub recompute: std::time::Duration,
    /// Scatter-gather iterations the warm recompute needed.
    pub iterations: usize,
}

/// Runs the ingestion experiment with `batches` equal batches.
pub fn run(effort: Effort) -> Vec<Step> {
    let ds = by_name("Twitter").expect("dataset");
    let full = ds.generate(effort.out_of_core_divisor()).to_undirected();
    let batches = if effort == Effort::Smoke { 3 } else { 6 };
    let per = full.num_edges().div_ceil(batches);
    let cfg = EngineConfig::default()
        .with_memory_budget(16 << 20)
        .with_io_unit(1 << 20);

    let mut labels: Vec<u32> = (0..full.num_vertices() as u32).collect();
    let mut steps = Vec::new();
    for b in 0..batches {
        let upto = ((b + 1) * per).min(full.num_edges());
        let acc =
            EdgeList::from_parts_unchecked(full.num_vertices(), full.edges()[..upto].to_vec());
        // Ingestion: the accumulated unordered list is shuffled into
        // partition files (this is the cheap append the paper touts);
        // only the recomputation is timed, as in the paper.
        let tag = format!("fig17_batch{b}");
        let store = temp_store(&tag, cfg.io_unit, true);
        let p = wcc::Wcc::new();
        let mut e = DiskEngine::from_graph(store, &acc, &p, cfg.clone()).expect("engine");
        e.store().accounting().reset();
        // Warm start from the previous batch's labels.
        e.vertex_map(&mut |v, s: &mut wcc::WccState| {
            s.label = labels[v as usize];
            s.active_round = 0;
        });
        let (new_labels, stats) = wcc::run(&mut e, &p);
        let modeled = ModeledRuntime::from_trace(stats.elapsed(), &e.store().accounting().trace());
        labels = new_labels;
        drop(e);
        cleanup(&tag);
        steps.push(Step {
            accumulated_edges: upto,
            recompute: modeled.ssd,
            iterations: stats.num_iterations(),
        });
    }
    steps
}

/// Renders the figure as a table.
pub fn report(effort: Effort) -> String {
    let mut t = Table::new("Fig 17: WCC recomputation while ingesting Twitter-like edges")
        .header(&["accumulated edges", "recompute (modeled ssd)", "iterations"]);
    for s in run(effort) {
        t.row(&[
            s.accumulated_edges.to_string(),
            fmt_duration(s.recompute),
            s.iterations.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recompute_time_grows_with_accumulated_size() {
        let steps = run(Effort::Smoke);
        assert!(steps.len() >= 2);
        let first = steps.first().unwrap();
        let last = steps.last().unwrap();
        assert!(last.accumulated_edges > first.accumulated_edges);
        // Warm-started recompute converges quickly even at full size.
        assert!(last.iterations <= 64);
    }
}
