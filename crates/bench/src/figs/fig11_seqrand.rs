//! Figure 11: sequential versus random bandwidth per medium.
//!
//! The table motivating the whole system: sequential access beats
//! random access on every medium, by 1.8–4.6x in RAM, ~30x on SSD and
//! ~500x on disk. RAM rows are *measured* (1 thread and all threads);
//! the SSD/HDD rows come from the calibrated device model, reproducing
//! the paper's numbers by construction (see DESIGN.md substitutions).

use crate::membw::{measure, Dir, Pattern};
use crate::{Effort, Table};
use xstream_storage::diskmodel::MediumRow;
use xstream_storage::DiskModel;

/// Runs the measurements and returns one row per medium.
pub fn run(effort: Effort) -> Vec<MediumRow> {
    // The buffer must bust the last-level cache at every effort, or a
    // random walk over a cache-resident buffer reports DRAM-beating
    // "bandwidth" and inverts the table.
    let bytes = match effort {
        Effort::Smoke | Effort::Quick => 64 << 20,
        Effort::Full => 256 << 20,
    };
    let passes = if effort == Effort::Smoke { 1 } else { 2 };
    let all = effort.thread_sweep().last().copied().unwrap_or(1);
    let mb = 1e6;
    let ram = |threads: usize, medium: &'static str| MediumRow {
        medium,
        rand_read: measure(threads, bytes, passes, Pattern::Random, Dir::Read) / mb,
        seq_read: measure(threads, bytes, passes, Pattern::Sequential, Dir::Read) / mb,
        rand_write: measure(threads, bytes, passes, Pattern::Random, Dir::Write) / mb,
        seq_write: measure(threads, bytes, passes, Pattern::Sequential, Dir::Write) / mb,
    };
    let model = |m: DiskModel, medium: &'static str| MediumRow {
        medium,
        rand_read: m.random_bw(false) / mb,
        seq_read: m.sequential_bw(false) / mb,
        rand_write: m.random_bw(true) / mb,
        seq_write: m.sequential_bw(true) / mb,
    };
    vec![
        ram(1, "RAM (1 core)"),
        ram(all, "RAM (all cores)"),
        model(DiskModel::ssd_raid0(), "SSD (modeled)"),
        model(DiskModel::hdd_raid0(), "HDD (modeled)"),
    ]
}

/// Renders the figure as a table.
pub fn report(effort: Effort) -> String {
    let mut t = Table::new("Fig 11: sequential vs random access (MB/s)").header(&[
        "medium",
        "rand read",
        "seq read",
        "rand write",
        "seq write",
        "seq/rand read",
    ]);
    for r in run(effort) {
        t.row(&[
            r.medium.to_string(),
            format!("{:.1}", r.rand_read),
            format!("{:.1}", r.seq_read),
            format!("{:.1}", r.rand_write),
            format!("{:.1}", r.seq_write),
            format!("{:.1}x", r.seq_read / r.rand_read.max(1e-9)),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_beats_random_on_every_medium() {
        // The RAM rows are *measured*, and on a noisy shared vCPU a
        // single run can invert (another tenant's burst lands inside
        // the sequential pass but not the random one). The physical
        // claim is about the medium, not about one sample, so the
        // assertion is retry-plus-median based: pass as soon as any
        // attempt orders every medium correctly, and otherwise judge
        // the per-medium *median* across all attempts — only a
        // machine where random genuinely keeps up with sequential
        // fails that. (The SSD/HDD rows come from the calibrated
        // model and can only fail on a real regression.)
        const ATTEMPTS: usize = 3;
        let mut samples: Vec<Vec<(f64, f64)>> = Vec::new(); // [attempt][medium]
        let mut media: Vec<&'static str> = Vec::new();
        for _ in 0..ATTEMPTS {
            let rows = run(Effort::Smoke);
            if rows.iter().all(|r| r.seq_read > r.rand_read) {
                return;
            }
            media = rows.iter().map(|r| r.medium).collect();
            samples.push(rows.iter().map(|r| (r.seq_read, r.rand_read)).collect());
        }
        let median = |mut v: Vec<f64>| -> f64 {
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        for (m, medium) in media.iter().enumerate() {
            let seq = median(samples.iter().map(|a| a[m].0).collect());
            let rand = median(samples.iter().map(|a| a[m].1).collect());
            assert!(
                seq > rand,
                "{medium}: median seq {seq:.1} <= median rand {rand:.1} \
                 over {ATTEMPTS} attempts"
            );
        }
    }

    #[test]
    fn gap_widens_toward_slower_media() {
        let rows = run(Effort::Smoke);
        let ratio = |r: &MediumRow| r.seq_read / r.rand_read.max(1e-9);
        let ssd = rows.iter().find(|r| r.medium.starts_with("SSD")).unwrap();
        let hdd = rows.iter().find(|r| r.medium.starts_with("HDD")).unwrap();
        // Paper: ~30x on SSD, ~500x on disk.
        assert!(ratio(ssd) > 20.0);
        assert!(ratio(hdd) > 400.0);
        assert!(ratio(hdd) > ratio(ssd));
    }
}
