//! Figure 24: effect of the number of streaming partitions.
//!
//! Too few partitions and a partition's vertex state spills the CPU
//! cache (random access becomes slow); too many and shuffling overhead
//! plus per-partition bookkeeping dominate. The paper shows a wide
//! flat valley between the extremes on RMAT scale 25; X-Stream's
//! automatic choice lands inside it. The harness sweeps K on an
//! effort-scaled RMAT graph for the same four algorithms.

use std::time::Duration;

use crate::{fmt_duration, Effort, Table};
use xstream_algorithms::{bfs, pagerank, spmv, wcc};
use xstream_core::EngineConfig;
use xstream_graph::datasets::rmat_scale;
use xstream_graph::EdgeList;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Forced partition count.
    pub partitions: usize,
    /// Runtimes: WCC, PageRank, BFS, SpMV.
    pub runtime: [Duration; 4],
}

fn series(g: &EdgeList, k: usize, threads: usize) -> [Duration; 4] {
    let cfg = || {
        EngineConfig::default()
            .with_threads(threads)
            .with_partitions(k)
    };
    let (_, s_wcc) = wcc::wcc_in_memory(g, cfg());
    let (_, s_pr) = pagerank::pagerank_in_memory(g, 5, cfg());
    let (_, s_bfs) = bfs::bfs_in_memory(g, g.max_out_degree_vertex(), cfg());
    let (_, it) = spmv::spmv_in_memory(g, cfg());
    [
        s_wcc.elapsed(),
        s_pr.elapsed(),
        s_bfs.elapsed(),
        Duration::from_nanos(it.total_ns()),
    ]
}

/// Runs the sweep; K ranges from far-too-few to far-too-many.
pub fn run(effort: Effort) -> Vec<Point> {
    let g = rmat_scale(effort.rmat_scale().saturating_sub(1).max(10));
    let threads = effort.thread_sweep().last().copied().unwrap_or(1);
    let max_k = match effort {
        Effort::Smoke => 1 << 10,
        Effort::Quick => 1 << 14,
        Effort::Full => 1 << 18,
    };
    let mut ks = Vec::new();
    let mut k = 1;
    while k <= max_k {
        ks.push(k);
        k *= 4;
    }
    ks.into_iter()
        .map(|k| Point {
            partitions: k,
            runtime: series(&g, k, threads),
        })
        .collect()
}

/// Renders the figure as a table, flagging the automatic choice.
pub fn report(effort: Effort) -> String {
    let g = rmat_scale(effort.rmat_scale().saturating_sub(1).max(10));
    let auto = EngineConfig::default().in_memory_partitions(
        g.num_vertices(),
        // WCC footprint: 8-byte state + 12-byte edge + 8-byte update.
        8 + 12 + 8,
    );
    let mut t =
        Table::new(format!("Fig 24: effect of partition count (auto choice = {auto})").as_str())
            .header(&["partitions", "WCC", "Pagerank", "BFS", "SpMV"]);
    for p in run(effort) {
        t.row(&[
            p.partitions.to_string(),
            fmt_duration(p.runtime[0]),
            fmt_duration(p.runtime[1]),
            fmt_duration(p.runtime[2]),
            fmt_duration(p.runtime[3]),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_are_slower_than_valley() {
        let pts = run(Effort::Smoke);
        assert!(pts.len() >= 3);
        // The most extreme K is slower than the best K for WCC.
        let best = pts.iter().map(|p| p.runtime[0]).min().unwrap();
        let last = pts.last().unwrap().runtime[0];
        assert!(
            last >= best,
            "excessive partitions should not be the fastest"
        );
    }
}
