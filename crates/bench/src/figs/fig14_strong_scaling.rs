//! Figure 14: strong scaling with thread count.
//!
//! The paper runs WCC, PageRank, BFS and SpMV over its largest
//! in-memory RMAT graph (scale 25) with 1..16 threads and observes
//! near-linear scaling. The harness sweeps the same algorithms on an
//! effort-scaled RMAT graph.

use std::time::Duration;

use crate::{fmt_duration, Effort, Table};
use xstream_algorithms::{bfs, pagerank, spmv, wcc};
use xstream_core::EngineConfig;
use xstream_graph::datasets::rmat_scale;
use xstream_graph::EdgeList;

/// The four algorithm series of the figure.
pub const SERIES: &[&str] = &["WCC", "Pagerank", "BFS", "SpMV"];

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Worker threads.
    pub threads: usize,
    /// Runtime per algorithm, same order as [`SERIES`].
    pub runtime: [Duration; 4],
    /// Peak shuffle-buffer residency of the WCC run, in percent
    /// (high-water records over held capacity): how tightly the
    /// adaptive equalization budget sized the pooled buffers to the
    /// observed steal skew at this thread count.
    pub residency_pct: f64,
}

fn run_series(g: &EdgeList, threads: usize) -> ([Duration; 4], f64) {
    let cfg = || EngineConfig::default().with_threads(threads);
    let (_, s_wcc) = wcc::wcc_in_memory(g, cfg());
    let (_, s_pr) = pagerank::pagerank_in_memory(g, 5, cfg());
    let (_, s_bfs) = bfs::bfs_in_memory(g, g.max_out_degree_vertex(), cfg());
    let (_, s_spmv) = spmv::spmv_in_memory(g, cfg());
    let residency = s_wcc.totals().buffer_residency_pct();
    (
        [
            s_wcc.elapsed(),
            s_pr.elapsed(),
            s_bfs.elapsed(),
            Duration::from_nanos(s_spmv.total_ns()),
        ],
        residency,
    )
}

/// Runs the sweep.
pub fn run(effort: Effort) -> Vec<Point> {
    let g = rmat_scale(effort.rmat_scale());
    effort
        .thread_sweep()
        .into_iter()
        .map(|threads| {
            let (runtime, residency_pct) = run_series(&g, threads);
            Point {
                threads,
                runtime,
                residency_pct,
            }
        })
        .collect()
}

/// Renders the figure as a table (runtimes plus the buffer-residency
/// gauge the adaptive capacity policy exposes).
pub fn report(effort: Effort) -> String {
    let mut t =
        Table::new(format!("Fig 14: strong scaling, RMAT scale {}", effort.rmat_scale()).as_str())
            .header(&["threads", "WCC", "Pagerank", "BFS", "SpMV", "buf resid"]);
    for p in run(effort) {
        t.row(&[
            p.threads.to_string(),
            fmt_duration(p.runtime[0]),
            fmt_duration(p.runtime[1]),
            fmt_duration(p.runtime[2]),
            fmt_duration(p.runtime[3]),
            format!("{:.0}%", p.residency_pct),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_series_run_at_smoke_scale() {
        let pts = run(Effort::Smoke);
        assert!(!pts.is_empty());
        for p in &pts {
            for d in p.runtime {
                assert!(d.as_nanos() > 0);
            }
            // The residency gauge is populated and sane.
            assert!(
                p.residency_pct > 0.0 && p.residency_pct <= 100.0,
                "residency {} at {} threads",
                p.residency_pct,
                p.threads
            );
        }
    }
}
