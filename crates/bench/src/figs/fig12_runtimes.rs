//! Figure 12: (a) runtimes of every algorithm on every dataset and
//! medium; (b) WCC iteration counts, runtime/streaming ratio and
//! wasted-edge percentages.
//!
//! The paper's headline applicability table: nine algorithms across
//! four in-memory graphs, three SSD-resident graphs and four
//! disk-resident graphs. Stand-ins replace the real datasets (see
//! Fig. 10) and the calibrated device model converts one accounted
//! disk-engine run per cell into modeled SSD and HDD runtimes.

use std::time::Duration;

use crate::figs::{cleanup, temp_store, ModeledRuntime};
use crate::{fmt_duration, Effort, Table};
use xstream_algorithms::util::splitmix64;
use xstream_algorithms::{bfs, bp, conductance, mcst, mis, pagerank, scc, spmv, sssp, wcc};
use xstream_core::{Edge, EngineConfig, RunStats};
use xstream_disk::DiskEngine;
use xstream_graph::datasets::{Dataset, Kind, Tier, DATASETS};
use xstream_graph::EdgeList;
use xstream_memory::InMemoryEngine;

/// The algorithm columns of Fig. 12a, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// Weakly connected components.
    Wcc,
    /// Strongly connected components.
    Scc,
    /// Single-source shortest paths.
    Sssp,
    /// Minimum-cost spanning tree.
    Mcst,
    /// Maximal independent set.
    Mis,
    /// Conductance of a parity bisection.
    Cond,
    /// Sparse matrix-vector multiplication.
    Spmv,
    /// PageRank, 5 iterations.
    Pagerank,
    /// Belief propagation, 5 iterations.
    Bp,
}

/// All Fig. 12a columns.
pub const ALGOS: &[Algo] = &[
    Algo::Wcc,
    Algo::Scc,
    Algo::Sssp,
    Algo::Mcst,
    Algo::Mis,
    Algo::Cond,
    Algo::Spmv,
    Algo::Pagerank,
    Algo::Bp,
];

impl Algo {
    /// Paper column label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Wcc => "WCC",
            Algo::Scc => "SCC",
            Algo::Sssp => "SSSP",
            Algo::Mcst => "MCST",
            Algo::Mis => "MIS",
            Algo::Cond => "Cond.",
            Algo::Spmv => "SpMV",
            Algo::Pagerank => "Pagerank",
            Algo::Bp => "BP",
        }
    }

    /// Traversal-style algorithms need many iterations on high-diameter
    /// graphs; the paper omits them for yahoo-web.
    pub fn is_traversal(self) -> bool {
        matches!(
            self,
            Algo::Wcc | Algo::Scc | Algo::Sssp | Algo::Mcst | Algo::Mis
        )
    }
}

/// Gives a deterministic random orientation to an undirected expansion
/// (the paper assigns random edge directions to undirected graphs for
/// SCC). Keeps exactly one direction per vertex pair.
pub fn random_orientation(g: &EdgeList, seed: u64) -> EdgeList {
    let mut out = Vec::with_capacity(g.num_edges() / 2 + 1);
    for e in g.edges() {
        let (a, b) = (e.src.min(e.dst), e.src.max(e.dst));
        if e.src > e.dst {
            // Visit each undirected pair once, at its canonical copy.
            continue;
        }
        let flip = splitmix64(seed ^ ((a as u64) << 32 | b as u64)) & 1 == 1;
        let (s, d) = if flip { (b, a) } else { (a, b) };
        out.push(Edge::weighted(s, d, e.weight));
    }
    EdgeList::from_parts_unchecked(g.num_vertices(), out)
}

/// Prepares the edge stream an algorithm expects from a dataset
/// stand-in (weights are always present; generators attach them).
fn prepare(algo: Algo, ds: &Dataset, base: &EdgeList) -> EdgeList {
    let directed = || {
        if ds.kind == Kind::Undirected {
            random_orientation(base, 0x5eed)
        } else {
            base.clone()
        }
    };
    match algo {
        // Undirected expansion for symmetric algorithms.
        Algo::Wcc | Algo::Mis | Algo::Bp | Algo::Mcst => {
            if ds.kind == Kind::Undirected {
                base.clone()
            } else {
                base.to_undirected()
            }
        }
        // Bidirectional tagged stream over a directed graph.
        Algo::Scc => directed().to_bidirectional(),
        // Directed streams.
        Algo::Sssp | Algo::Cond | Algo::Spmv | Algo::Pagerank => directed(),
    }
}

/// Runs one algorithm on the in-memory engine.
pub fn run_in_memory(algo: Algo, graph: &EdgeList, cfg: EngineConfig) -> RunStats {
    match algo {
        Algo::Wcc => {
            let p = wcc::Wcc::new();
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            wcc::run(&mut e, &p).1
        }
        Algo::Scc => {
            let p = scc::Scc::new();
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            scc::run(&mut e, &p).1
        }
        Algo::Sssp => {
            let p = sssp::Sssp::new();
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            sssp::run(&mut e, &p, graph.max_out_degree_vertex()).1
        }
        Algo::Mcst => {
            let p = mcst::Mcst;
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            mcst::run(&mut e, &p).1
        }
        Algo::Mis => {
            let p = mis::Mis::new();
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            mis::run(&mut e, &p).1
        }
        Algo::Cond => {
            let p = conductance::Conductance;
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            let (_, it) = conductance::run(&mut e, &p, &|v| v & 1);
            one_iteration_stats(it)
        }
        Algo::Spmv => {
            let p = spmv::Spmv;
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            let x = vec![1.0f32; graph.num_vertices()];
            let (_, it) = spmv::run(&mut e, &p, &x);
            one_iteration_stats(it)
        }
        Algo::Pagerank => {
            let p = pagerank::Pagerank;
            let degrees = graph.out_degrees();
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            pagerank::run(&mut e, &p, &degrees, 5).1
        }
        Algo::Bp => {
            let p = bp::Bp;
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            bp::run(&mut e, &p, &bp_seeds(graph.num_vertices()), 5).1
        }
    }
}

/// Runs one algorithm on the out-of-core engine against an accounted
/// temp store; returns the run stats and the modeled device runtimes.
pub fn run_out_of_core(
    algo: Algo,
    graph: &EdgeList,
    cfg: EngineConfig,
    tag: &str,
) -> (RunStats, ModeledRuntime) {
    let store = temp_store(tag, cfg.io_unit, true);
    match algo {
        Algo::Wcc => {
            let p = wcc::Wcc::new();
            let mut e = DiskEngine::from_graph(store, graph, &p, cfg).expect("disk engine");
            let (_, s) = wcc::run(&mut e, &p);
            finish(e, s, tag)
        }
        Algo::Scc => {
            let p = scc::Scc::new();
            let mut e = DiskEngine::from_graph(store, graph, &p, cfg).expect("disk engine");
            let (_, s) = scc::run(&mut e, &p);
            finish(e, s, tag)
        }
        Algo::Sssp => {
            let p = sssp::Sssp::new();
            let mut e = DiskEngine::from_graph(store, graph, &p, cfg).expect("disk engine");
            let (_, s) = sssp::run(&mut e, &p, graph.max_out_degree_vertex());
            finish(e, s, tag)
        }
        Algo::Mcst => {
            let p = mcst::Mcst;
            let mut e = DiskEngine::from_graph(store, graph, &p, cfg).expect("disk engine");
            let (_, s) = mcst::run(&mut e, &p);
            finish(e, s, tag)
        }
        Algo::Mis => {
            let p = mis::Mis::new();
            let mut e = DiskEngine::from_graph(store, graph, &p, cfg).expect("disk engine");
            let (_, s) = mis::run(&mut e, &p);
            finish(e, s, tag)
        }
        Algo::Cond => {
            let p = conductance::Conductance;
            let mut e = DiskEngine::from_graph(store, graph, &p, cfg).expect("disk engine");
            let (_, it) = conductance::run(&mut e, &p, &|v| v & 1);
            finish(e, one_iteration_stats(it), tag)
        }
        Algo::Spmv => {
            let p = spmv::Spmv;
            let mut e = DiskEngine::from_graph(store, graph, &p, cfg).expect("disk engine");
            let x = vec![1.0f32; graph.num_vertices()];
            let (_, it) = spmv::run(&mut e, &p, &x);
            finish(e, one_iteration_stats(it), tag)
        }
        Algo::Pagerank => {
            let p = pagerank::Pagerank;
            let degrees = graph.out_degrees();
            let mut e = DiskEngine::from_graph(store, graph, &p, cfg).expect("disk engine");
            let (_, s) = pagerank::run(&mut e, &p, &degrees, 5);
            finish(e, s, tag)
        }
        Algo::Bp => {
            let p = bp::Bp;
            let mut e = DiskEngine::from_graph(store, graph, &p, cfg).expect("disk engine");
            let (_, s) = bp::run(&mut e, &p, &bp_seeds(graph.num_vertices()), 5);
            finish(e, s, tag)
        }
    }
}

fn finish<P: xstream_core::EdgeProgram>(
    engine: DiskEngine<P>,
    stats: RunStats,
    tag: &str,
) -> (RunStats, ModeledRuntime) {
    let trace = engine.store().accounting().trace();
    let wall = Duration::from_nanos(stats.total_ns);
    let modeled = ModeledRuntime::from_trace(wall, &trace);
    drop(engine);
    cleanup(tag);
    (stats, modeled)
}

fn one_iteration_stats(it: xstream_core::IterationStats) -> RunStats {
    let total_ns = it.total_ns();
    RunStats {
        iterations: vec![it],
        total_ns,
    }
}

fn bp_seeds(n: usize) -> Vec<(u32, usize)> {
    (0..8u32.min(n as u32))
        .map(|v| (v, (v & 1) as usize))
        .collect()
}

/// In-memory engine configuration for the Fig. 12 runs.
fn mem_cfg() -> EngineConfig {
    EngineConfig::default()
}

/// Out-of-core engine configuration scaled to the stand-in sizes. The
/// §3.4 inequality `N/K + 5SK <= M` must stay feasible for the largest
/// per-vertex state in the figure (BP's 24 bytes), so the budget is
/// raised to the theoretical minimum `2*sqrt(5NS)` plus head-room when
/// a stand-in's vertex set outgrows the effort's base budget.
fn disk_cfg(effort: Effort, num_vertices: usize) -> EngineConfig {
    let base: usize = match effort {
        Effort::Smoke => 8 << 20,
        Effort::Quick => 32 << 20,
        Effort::Full => 256 << 20,
    };
    let io_unit = 1usize << 20;
    let worst_state = 32usize;
    let n = (num_vertices * worst_state) as f64;
    let min_feasible = (2.0 * (5.0 * n * io_unit as f64).sqrt() * 1.3) as usize;
    EngineConfig::default()
        .with_memory_budget(base.max(min_feasible))
        .with_io_unit(io_unit)
}

/// Renders the Fig. 12a table (runtimes) and the Fig. 12b table (WCC
/// execution characteristics) in one report.
pub fn report(effort: Effort) -> String {
    let mut out = String::new();

    // ---- In-memory block ----
    let mut t12a = Table::new("Fig 12a: runtimes").header(
        &[
            &["medium/dataset"],
            ALGOS
                .iter()
                .map(|a| a.label())
                .collect::<Vec<_>>()
                .as_slice(),
        ]
        .concat(),
    );
    let mut wcc_rows: Vec<(String, RunStats)> = Vec::new();

    for ds in DATASETS.iter().filter(|d| d.tier == Tier::InMemory) {
        let base = ds.generate(effort.in_memory_divisor());
        let mut row = vec![format!("mem/{}", ds.name)];
        for &algo in ALGOS {
            let input = prepare(algo, ds, &base);
            let stats = run_in_memory(algo, &input, mem_cfg());
            if algo == Algo::Wcc {
                wcc_rows.push((format!("mem/{}", ds.name), stats.clone()));
            }
            row.push(fmt_duration(stats.elapsed()));
        }
        t12a.row(&row);
    }

    // ---- Out-of-core block: one accounted run models both media ----
    let ooc: Vec<&Dataset> = DATASETS
        .iter()
        .filter(|d| d.tier == Tier::OutOfCore && d.kind != Kind::Bipartite)
        .collect();
    for medium in ["ssd", "disk"] {
        for ds in &ooc {
            // The paper omits traversal algorithms on yahoo-web (they
            // did not finish in reasonable time) and never lists
            // yahoo-web under SSD (it did not fit).
            if ds.name == "yahoo-web" && medium == "ssd" {
                continue;
            }
            let base = ds.generate(effort.out_of_core_divisor());
            let mut row = vec![format!("{medium}/{}", ds.name)];
            for &algo in ALGOS {
                if ds.name == "yahoo-web" && algo.is_traversal() {
                    row.push("-".to_string());
                    continue;
                }
                let input = prepare(algo, ds, &base);
                let tag = format!("fig12_{}_{}_{medium}", ds.name, algo.label());
                let (stats, modeled) =
                    run_out_of_core(algo, &input, disk_cfg(effort, input.num_vertices()), &tag);
                let runtime = if medium == "ssd" {
                    modeled.ssd
                } else {
                    modeled.hdd
                };
                if algo == Algo::Wcc {
                    wcc_rows.push((format!("{medium}/{}", ds.name), stats));
                }
                row.push(fmt_duration(runtime));
            }
            t12a.row(&row);
        }
    }
    out.push_str(&t12a.render());
    out.push('\n');

    // ---- Fig 12b ----
    let mut t12b = Table::new("Fig 12b: WCC iterations, runtime/streaming ratio, wasted edges")
        .header(&["dataset", "# iters", "ratio", "wasted %"]);
    for (name, stats) in &wcc_rows {
        t12b.row(&[
            name.clone(),
            stats.num_iterations().to_string(),
            format!("{:.2}", stats.runtime_to_streaming_ratio()),
            format!("{:.0}", stats.wasted_pct()),
        ]);
    }
    out.push_str(&t12b.render());
    out.push('\n');

    // ---- Fig 12b addendum: BFS under the frontier-aware scatter ----
    // The paper's §6.3 weakness made concrete: a BFS run on the disk
    // engine, with the hybrid scatter's per-superstep gauges summed
    // over the run. `dense-equiv` is what the stream-everything design
    // would have paid (|E| per superstep).
    let mut t12c =
        Table::new("Fig 12b addendum: BFS frontier-aware scatter (disk engine)").header(&[
            "dataset",
            "# iters",
            "edges streamed",
            "dense-equiv",
            "skipped",
            "sparse",
            "peak dens %",
        ]);
    for ds in &ooc {
        if ds.name == "yahoo-web" {
            continue; // the paper omits traversals on yahoo-web
        }
        let base = ds.generate(effort.out_of_core_divisor());
        let input = prepare(Algo::Sssp, ds, &base); // plain directed stream
        let tag = format!("fig12_{}_bfs", ds.name);
        let store = temp_store(&tag, 1 << 16, true);
        let p = bfs::Bfs::new();
        // A genuinely constrained out-of-core shape (several streaming
        // partitions, forced spills): with `disk_cfg`'s comfortable
        // budget the stand-ins collapse to one partition, which gives
        // partition-granular skipping nothing to skip.
        let cfg = EngineConfig {
            in_memory_updates: false,
            ..EngineConfig::default()
                .with_io_unit(1 << 16)
                .with_memory_budget(2 << 20)
                .with_partitions(8)
        };
        let mut e = DiskEngine::from_graph(store, &input, &p, cfg).expect("disk engine");
        let (_, s) = bfs::run(&mut e, &p, input.max_out_degree_vertex());
        drop(e);
        cleanup(&tag);
        let t = s.totals();
        let dense_equiv = input.num_edges() as u64 * s.num_iterations() as u64;
        t12c.row(&[
            format!("disk/{}", ds.name),
            s.num_iterations().to_string(),
            t.edges_streamed.to_string(),
            dense_equiv.to_string(),
            t.partitions_skipped.to_string(),
            t.partitions_sparse.to_string(),
            format!("{:.1}", t.frontier_density * 100.0),
        ]);
    }
    out.push_str(&t12c.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xstream_graph::datasets::by_name;

    #[test]
    fn random_orientation_halves_undirected_edges() {
        let g = xstream_graph::generators::erdos_renyi(50, 200, 7).to_undirected();
        let o = random_orientation(&g, 1);
        // Every undirected pair contributes one directed edge (self
        // loops keep their single copy from to_undirected).
        assert!(o.num_edges() <= g.num_edges() / 2 + 5);
        assert!(o.num_edges() >= g.num_edges() / 2 - 5);
    }

    #[test]
    fn in_memory_cell_runs() {
        let ds = by_name("amazon0601").unwrap();
        let base = ds.generate(2048);
        let input = prepare(Algo::Wcc, ds, &base);
        let stats = run_in_memory(Algo::Wcc, &input, mem_cfg());
        assert!(stats.num_iterations() > 0);
    }

    #[test]
    fn out_of_core_cell_runs_and_models() {
        let ds = by_name("Twitter").unwrap();
        let base = ds.generate(1 << 14);
        let input = prepare(Algo::Pagerank, ds, &base);
        let (stats, modeled) = run_out_of_core(
            Algo::Pagerank,
            &input,
            disk_cfg(Effort::Smoke, input.num_vertices()),
            "fig12_test",
        );
        assert_eq!(stats.num_iterations(), 5);
        // The disk engine must actually touch storage, so the modeled
        // HDD time exceeds the modeled SSD time.
        assert!(modeled.hdd >= modeled.ssd);
    }
}
