//! Figure 13: HyperANF steps to cover the graph (diameter estimate).
//!
//! The paper uses HyperANF to explain why DIMACS and yahoo-web hurt
//! X-Stream: their neighbourhood function needs thousands of steps to
//! converge (huge diameter), and each step streams the whole edge
//! list. The harness runs HyperANF over the in-memory stand-ins plus
//! the sk-2005 stand-in; the grid (DIMACS) row dwarfs the rest.

use crate::{Effort, Table};
use xstream_algorithms::hyperanf;
use xstream_core::EngineConfig;
use xstream_graph::datasets::{by_name, Kind};

/// Datasets of the paper's Fig. 13, paper-reported step counts.
pub const PAPER_STEPS: &[(&str, &str)] = &[
    ("amazon0601", "19"),
    ("cit-Patents", "20"),
    ("soc-livejournal", "15"),
    ("dimacs-usa", "8122"),
    ("sk-2005", "28"),
];

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name.
    pub name: &'static str,
    /// Steps HyperANF needed on the stand-in.
    pub steps: usize,
    /// Paper's reported step count (for EXPERIMENTS.md comparison).
    pub paper: &'static str,
}

/// Runs HyperANF over every Fig. 13 dataset stand-in.
pub fn run(effort: Effort) -> Vec<Row> {
    let cap = match effort {
        Effort::Smoke => 256,
        _ => 20_000,
    };
    PAPER_STEPS
        .iter()
        .map(|&(name, paper)| {
            let ds = by_name(name).expect("dataset");
            let divisor = match name {
                // sk-2005 is an out-of-core graph in the paper; its
                // neighbourhood function is still computed at a small
                // scale here.
                "sk-2005" => effort.out_of_core_divisor(),
                // The grid's step count scales with its side, and each
                // step streams HLL sketches over every edge; shrink it
                // further (it still dwarfs every other row, which is
                // the figure's point).
                "dimacs-usa" => effort.in_memory_divisor() * 8,
                _ => effort.in_memory_divisor(),
            };
            let base = ds.generate(divisor);
            let undirected = if ds.kind == Kind::Undirected {
                base
            } else {
                base.to_undirected()
            };
            let (nf, _) = hyperanf::hyperanf_in_memory(&undirected, cap, EngineConfig::default());
            Row {
                name,
                steps: nf.steps,
                paper,
            }
        })
        .collect()
}

/// Renders the figure as a table.
pub fn report(effort: Effort) -> String {
    let mut t = Table::new("Fig 13: HyperANF steps to cover the graph").header(&[
        "graph",
        "steps (stand-in)",
        "steps (paper)",
    ]);
    for r in run(effort) {
        t.row(&[r.name.to_string(), r.steps.to_string(), r.paper.to_string()]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dwarfs_scale_free_step_counts() {
        let rows = run(Effort::Smoke);
        let dimacs = rows.iter().find(|r| r.name == "dimacs-usa").unwrap();
        for r in rows.iter().filter(|r| r.name != "dimacs-usa") {
            assert!(
                dimacs.steps > 4 * r.steps.max(1),
                "dimacs {} vs {} {}",
                dimacs.steps,
                r.name,
                r.steps
            );
        }
    }
}
