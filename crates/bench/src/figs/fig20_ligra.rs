//! Figure 20: comparison with a Ligra-style frontier engine.
//!
//! Ligra's direction-optimizing BFS is 10-20x faster than X-Stream on
//! the computation proper but pays a pre-processing cost (sort + CSR +
//! reversed CSR) 7-8x larger than X-Stream's entire runtime; for
//! PageRank, whose uniform communication makes direction reversal
//! useless, X-Stream wins outright. The harness reproduces both
//! columns plus the pre-processing time on a Twitter-like stand-in.

use std::time::{Duration, Instant};

use crate::{fmt_duration, Effort, Table};
use xstream_algorithms::{bfs, pagerank};
use xstream_baselines::ligra;
use xstream_core::EngineConfig;
use xstream_graph::datasets::by_name;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    /// Worker threads.
    pub threads: usize,
    /// Ligra BFS computation time.
    pub ligra_bfs: Duration,
    /// X-Stream BFS runtime (from the unordered list).
    pub xstream_bfs: Duration,
    /// Ligra PageRank computation time (5 iterations).
    pub ligra_pr: Duration,
    /// X-Stream PageRank runtime (5 iterations).
    pub xstream_pr: Duration,
    /// Ligra pre-processing (sort + CSR + reversed CSR).
    pub ligra_pre: Duration,
}

/// Runs the comparison.
pub fn run(effort: Effort) -> Vec<Point> {
    let ds = by_name("Twitter").expect("dataset");
    // The preferential-attachment stand-in is a DAG pointing from new
    // vertices to old ones, so a directed BFS from any root reaches
    // almost nothing; the paper's real Twitter crawl is strongly
    // cyclic. Use the undirected expansion for a comparable traversal
    // (both systems receive the same stream).
    let g = ds.generate(effort.out_of_core_divisor()).to_undirected();
    let pre = ligra::Preprocessed::build(&g);
    let root = g.max_out_degree_vertex();
    effort
        .thread_sweep()
        .into_iter()
        .map(|threads| {
            let t0 = Instant::now();
            let lb = ligra::bfs(&pre, root, threads);
            let ligra_bfs = t0.elapsed();

            let t0 = Instant::now();
            let _ = ligra::pagerank(&pre, 5, threads);
            let ligra_pr = t0.elapsed();

            let cfg = EngineConfig::default().with_threads(threads);
            let (xb, sb) = bfs::bfs_in_memory(&g, root, cfg.clone());
            debug_assert_eq!(lb, xb);
            let (_, sp) = pagerank::pagerank_in_memory(&g, 5, cfg);
            Point {
                threads,
                ligra_bfs,
                xstream_bfs: sb.elapsed(),
                ligra_pr,
                xstream_pr: sp.elapsed(),
                ligra_pre: pre.preprocessing,
            }
        })
        .collect()
}

/// Renders the figure as a table.
pub fn report(effort: Effort) -> String {
    let mut t = Table::new("Fig 20: Ligra comparison on Twitter-like graph").header(&[
        "threads",
        "Ligra BFS",
        "X-Stream BFS",
        "Ligra PR",
        "X-Stream PR",
        "Ligra-pre",
    ]);
    for p in run(effort) {
        t.row(&[
            p.threads.to_string(),
            fmt_duration(p.ligra_bfs),
            fmt_duration(p.xstream_bfs),
            fmt_duration(p.ligra_pr),
            fmt_duration(p.xstream_pr),
            fmt_duration(p.ligra_pre),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preprocessing_dwarfs_ligra_bfs() {
        // The paper's point: Ligra's BFS win is funded by a large
        // pre-processing bill.
        let pts = run(Effort::Smoke);
        let p = pts.last().unwrap();
        assert!(p.ligra_pre > p.ligra_bfs);
    }
}
