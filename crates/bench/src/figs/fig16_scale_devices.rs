//! Figure 16: scaling across storage devices.
//!
//! The paper caps X-Stream at 16 GB of RAM and doubles the RMAT scale
//! until the graph migrates from memory to SSD to magnetic disk;
//! runtime grows smoothly with 'bumps' at each media transition. The
//! harness sweeps effort-scaled RMAT graphs under a proportional RAM
//! cap: in-memory scales run measured, out-of-core scales run through
//! the accounted disk engine and are modeled on SSD and HDD.

use crate::figs::{cleanup, temp_store, ModeledRuntime};
use crate::{fmt_duration, Effort, Table};
use std::time::Duration;
use xstream_algorithms::{spmv, wcc};
use xstream_core::EngineConfig;
use xstream_disk::DiskEngine;
use xstream_graph::datasets::rmat_scale;
use xstream_graph::EdgeList;

/// Medium a scale landed on under the RAM cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Medium {
    /// Graph + streams fit under the cap: in-memory engine, measured.
    Memory,
    /// First out-of-core region: modeled on the SSD pair.
    Ssd,
    /// Largest scales: modeled on the HDD pair.
    Disk,
}

/// One measured point.
#[derive(Debug, Clone)]
pub struct Point {
    /// RMAT scale (2^scale vertices).
    pub scale: u32,
    /// Medium chosen by the cap.
    pub medium: Medium,
    /// WCC runtime.
    pub wcc: Duration,
    /// SpMV runtime.
    pub spmv: Duration,
}

fn graph_bytes(g: &EdgeList) -> usize {
    g.num_edges() * std::mem::size_of::<xstream_core::Edge>()
}

fn run_point(g: &EdgeList, medium: Medium, scale: u32) -> (Duration, Duration) {
    match medium {
        Medium::Memory => {
            let (_, s) = wcc::wcc_in_memory(g, EngineConfig::default());
            let (_, it) = spmv::spmv_in_memory(g, EngineConfig::default());
            (s.elapsed(), Duration::from_nanos(it.total_ns()))
        }
        Medium::Ssd | Medium::Disk => {
            let cfg = EngineConfig::default()
                .with_memory_budget(16 << 20)
                .with_io_unit(1 << 20);
            let pick = |m: ModeledRuntime| match medium {
                Medium::Ssd => m.ssd,
                _ => m.hdd,
            };
            let tag = format!("fig16_wcc_{scale}");
            let store = temp_store(&tag, cfg.io_unit, true);
            let p = wcc::Wcc::new();
            let mut e = DiskEngine::from_graph(store, g, &p, cfg.clone()).expect("engine");
            let (_, s) = wcc::run(&mut e, &p);
            let m = ModeledRuntime::from_trace(s.elapsed(), &e.store().accounting().trace());
            let wcc_time = pick(m);
            drop(e);
            cleanup(&tag);

            let tag = format!("fig16_spmv_{scale}");
            let store = temp_store(&tag, cfg.io_unit, true);
            let p = spmv::Spmv;
            let mut e = DiskEngine::from_graph(store, g, &p, cfg).expect("engine");
            let x = vec![1.0f32; g.num_vertices()];
            let (_, it) = spmv::run(&mut e, &p, &x);
            let m = ModeledRuntime::from_trace(
                Duration::from_nanos(it.total_ns()),
                &e.store().accounting().trace(),
            );
            let spmv_time = pick(m);
            drop(e);
            cleanup(&tag);
            (wcc_time, spmv_time)
        }
    }
}

/// Runs the scale sweep. The cap is set two scales above the smallest
/// graph so the sweep crosses memory → SSD → disk like the paper.
pub fn run(effort: Effort) -> Vec<Point> {
    let lo = match effort {
        Effort::Smoke => 10,
        Effort::Quick => 13,
        Effort::Full => 16,
    };
    let count = if effort == Effort::Smoke { 4 } else { 6 };
    let cap_scale = lo + 1;
    let ssd_top = lo + (count / 2) as u32;
    let cap = graph_bytes(&rmat_scale(cap_scale)) * 2;
    (lo..lo + count as u32)
        .map(|scale| {
            let g = rmat_scale(scale);
            let medium = if graph_bytes(&g) * 2 <= cap {
                Medium::Memory
            } else if scale <= ssd_top {
                Medium::Ssd
            } else {
                Medium::Disk
            };
            let (wcc, spmv) = run_point(&g, medium, scale);
            Point {
                scale,
                medium,
                wcc,
                spmv,
            }
        })
        .collect()
}

/// Renders the figure as a table.
pub fn report(effort: Effort) -> String {
    let mut t = Table::new("Fig 16: runtime vs scale across devices")
        .header(&["scale", "medium", "WCC", "SpMV"]);
    for p in run(effort) {
        t.row(&[
            p.scale.to_string(),
            format!("{:?}", p.medium),
            fmt_duration(p.wcc),
            fmt_duration(p.spmv),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_crosses_media_and_bumps() {
        let pts = run(Effort::Smoke);
        assert!(pts.iter().any(|p| p.medium == Medium::Memory));
        assert!(pts.iter().any(|p| p.medium != Medium::Memory));
        // The first out-of-core point is slower than the last in-memory
        // point (the figure's 'bump').
        let last_mem = pts.iter().rfind(|p| p.medium == Medium::Memory).unwrap();
        let first_ooc = pts.iter().find(|p| p.medium != Medium::Memory).unwrap();
        assert!(first_ooc.wcc > last_mem.wcc);
    }
}
