//! Plain-text table formatting for harness reports.
//!
//! Every harness prints its figure as an aligned text table so the
//! output can be diffed against EXPERIMENTS.md and eyeballed against
//! the paper's figures.

use std::fmt::Write as _;

/// An aligned text table with a title and a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title line.
    pub fn new(title: &str) -> Self {
        Self {
            title: title.to_string(),
            ..Self::default()
        }
    }

    /// Sets the column headers.
    pub fn header<S: ToString>(mut self, cols: &[S]) -> Self {
        self.header = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Appends one row; the cell count should match the header.
    pub fn row<S: ToString>(&mut self, cells: &[S]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table with every column padded to its widest cell.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "# {}", self.title);
        }
        let fmt_row = |row: &[String], out: &mut String| {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{cell:>width$}", width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        };
        if !self.header.is_empty() {
            fmt_row(&self.header, &mut out);
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo").header(&["name", "value"]);
        t.row(&["a", "1"]);
        t.row(&["long-name", "12345"]);
        let s = t.render();
        assert!(s.starts_with("# demo\n"));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, rule, two rows.
        assert_eq!(lines.len(), 5);
        // Both data rows are equally wide (right-aligned).
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn handles_empty_table() {
        let t = Table::new("empty").header(&["a"]);
        assert!(t.render().contains("empty"));
        assert_eq!(t.num_rows(), 0);
    }
}
