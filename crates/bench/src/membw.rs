//! Memory-bandwidth microbenchmark (paper Fig. 8 and the RAM rows of
//! Fig. 11).
//!
//! Each thread scans a thread-private buffer far larger than the last-
//! level cache, either sequentially (the streaming pattern X-Stream is
//! built around) or by touching one random cache line per step. The
//! paper's buffers are 256 MB per thread; the harness scales that down
//! with effort while keeping the buffer >> LLC so DRAM stays the
//! bottleneck.

use std::hint::black_box;
use std::time::Instant;

/// Access pattern of one measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Linear scan; hardware prefetchers engage.
    Sequential,
    /// One random cache line per access; prefetchers are defeated.
    Random,
}

/// Direction of one measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Sum the buffer (loads only).
    Read,
    /// Overwrite the buffer (stores only).
    Write,
}

/// Measures aggregate bandwidth in bytes/second with `threads`
/// concurrent workers, each touching `bytes_per_thread` of private
/// memory once per pass for `passes` passes.
pub fn measure(
    threads: usize,
    bytes_per_thread: usize,
    passes: usize,
    pattern: Pattern,
    dir: Dir,
) -> f64 {
    let words = (bytes_per_thread / 8).max(1024);
    let total_bytes = (threads * words * 8 * passes) as f64;
    let elapsed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut buf = vec![0u64; words];
                    // Touch every page before timing.
                    for (i, w) in buf.iter_mut().enumerate() {
                        *w = i as u64;
                    }
                    let start = Instant::now();
                    let mut acc = 0u64;
                    for pass in 0..passes {
                        match (pattern, dir) {
                            (Pattern::Sequential, Dir::Read) => {
                                for &w in &buf {
                                    acc = acc.wrapping_add(w);
                                }
                            }
                            (Pattern::Sequential, Dir::Write) => {
                                let v = (t + pass) as u64;
                                for w in buf.iter_mut() {
                                    *w = v;
                                }
                            }
                            (Pattern::Random, Dir::Read) => {
                                // One load per cache line (8 words),
                                // indexed by a splitmix-style walk.
                                let lines = words / 8;
                                let mut x = 0x9e37_79b9u64
                                    .wrapping_mul(t as u64 + 1)
                                    .wrapping_add(pass as u64);
                                for _ in 0..lines {
                                    x ^= x << 13;
                                    x ^= x >> 7;
                                    x ^= x << 17;
                                    let line = (x as usize) % lines;
                                    acc = acc.wrapping_add(buf[line * 8]);
                                }
                            }
                            (Pattern::Random, Dir::Write) => {
                                let lines = words / 8;
                                let mut x = 0xdead_beefu64
                                    .wrapping_mul(t as u64 + 1)
                                    .wrapping_add(pass as u64);
                                for i in 0..lines {
                                    x ^= x << 13;
                                    x ^= x >> 7;
                                    x ^= x << 17;
                                    let line = (x as usize) % lines;
                                    buf[line * 8] = i as u64;
                                }
                            }
                        }
                    }
                    black_box(acc);
                    black_box(&buf);
                    start.elapsed()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bandwidth worker panicked"))
            .max()
            .unwrap_or_default()
    });
    let secs = elapsed.as_secs_f64().max(1e-9);
    // Random measurements only touch one word per cache line, but the
    // memory system moves the whole line; report line-level traffic
    // for reads/writes alike so patterns are comparable.
    let moved = match pattern {
        Pattern::Sequential => total_bytes,
        Pattern::Random => total_bytes / 8.0 * 64.0 / 8.0,
    };
    moved / secs
}

/// Bytes per thread used by the Fig. 8 harness at a given buffer
/// budget; keeps the scan well beyond typical LLC sizes.
pub fn default_buffer_bytes() -> usize {
    64 << 20
}

/// Bandwidth of one load per cache line over `bytes` of memory, with
/// the line index either advancing linearly or drawn from a xorshift
/// walk.
///
/// Unlike [`measure`], both patterns execute an *identical* loop body
/// (the xorshift state is advanced either way and only the index
/// differs), so the comparison isolates the access pattern itself.
/// This makes the sequential-beats-random invariant observable even in
/// unoptimized builds and on virtualized hardware where part of the
/// buffer may be host-cache resident — conditions under which
/// [`measure`]'s full-scan loop is dominated by per-iteration overhead
/// rather than by the memory system.
pub fn line_access_bandwidth(bytes: usize, passes: usize, pattern: Pattern) -> f64 {
    let words = (bytes / 8).max(4096);
    let lines = words / 8;
    let mut buf = vec![0u64; words];
    for (i, w) in buf.iter_mut().enumerate() {
        *w = i as u64;
    }
    let start = Instant::now();
    let mut acc = 0u64;
    for pass in 0..passes {
        let mut x = 0x9e37_79b9u64.wrapping_add(pass as u64) | 1;
        for i in 0..lines {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = match pattern {
                Pattern::Sequential => i,
                Pattern::Random => (x as usize) % lines,
            };
            acc = acc.wrapping_add(buf[line * 8]);
        }
    }
    black_box(acc);
    black_box(&buf);
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (lines * passes * 64) as f64 / secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_read_beats_random_read() {
        // The central premise of the paper (Fig. 11): sequential
        // bandwidth exceeds random bandwidth on every medium. The
        // line-stride harness keeps the loop body identical across
        // patterns so the invariant holds in unoptimized builds and on
        // virtualized hardware too; 32 MB spills guest caches.
        let seq = line_access_bandwidth(32 << 20, 2, Pattern::Sequential);
        let rnd = line_access_bandwidth(32 << 20, 2, Pattern::Random);
        assert!(
            seq > rnd,
            "sequential {seq:.0} B/s should beat random {rnd:.0} B/s"
        );
    }

    #[test]
    fn bandwidth_is_positive() {
        for p in [Pattern::Sequential, Pattern::Random] {
            for d in [Dir::Read, Dir::Write] {
                assert!(measure(1, 1 << 20, 1, p, d) > 0.0);
            }
        }
    }
}
