//! Experiment sizing.
//!
//! The paper's testbed ran for hours on billion-edge graphs; the
//! harness scales every experiment down so the full suite regenerates
//! in minutes while preserving each figure's *shape* (who wins, by
//! what factor, where crossovers fall). The scale knob is uniform
//! across harnesses so EXPERIMENTS.md can record one divisor per run.

/// How much work a harness invocation should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Seconds-scale smoke run; used by the integration tests to keep
    /// every harness exercised on every `cargo test`.
    Smoke,
    /// Default laptop scale: the full suite finishes in minutes.
    Quick,
    /// Larger graphs for closer-to-paper shapes; tens of minutes.
    Full,
}

impl Effort {
    /// Reads the effort from the `XSTREAM_EFFORT` environment variable
    /// (`smoke` / `quick` / `full`), then from the first CLI argument,
    /// defaulting to [`Effort::Quick`].
    pub fn from_env() -> Self {
        let arg = std::env::args().nth(1);
        let var = std::env::var("XSTREAM_EFFORT").ok();
        match arg.as_deref().or(var.as_deref()) {
            Some("smoke") => Effort::Smoke,
            Some("full") => Effort::Full,
            _ => Effort::Quick,
        }
    }

    /// RMAT scale for the paper's "largest graph that fits in memory"
    /// experiments (the paper uses scale 25: 32M vertices, 512M
    /// undirected edges).
    pub fn rmat_scale(self) -> u32 {
        match self {
            Effort::Smoke => 12,
            Effort::Quick => 18,
            Effort::Full => 21,
        }
    }

    /// Divisor applied to the paper's dataset sizes for the in-memory
    /// stand-ins (Fig. 10 / 12 / 13).
    pub fn in_memory_divisor(self) -> u64 {
        match self {
            Effort::Smoke => 512,
            Effort::Quick => 32,
            Effort::Full => 4,
        }
    }

    /// Divisor applied to the paper's dataset sizes for the
    /// out-of-core stand-ins (billions of edges in the paper).
    pub fn out_of_core_divisor(self) -> u64 {
        match self {
            Effort::Smoke => 4096,
            Effort::Quick => 512,
            Effort::Full => 64,
        }
    }

    /// Thread counts swept by the scaling experiments (paper: 1..16).
    pub fn thread_sweep(self) -> Vec<usize> {
        let max = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16);
        let mut t = 1;
        let mut out = Vec::new();
        while t <= max {
            out.push(t);
            t *= 2;
        }
        if out.last() != Some(&max) {
            out.push(max);
        }
        if self == Effort::Smoke {
            out.truncate(2);
        }
        out
    }

    /// Iteration budget multiplier for fixed-iteration algorithms.
    pub fn pagerank_iterations(self) -> usize {
        // The paper runs 5 PageRank/ALS/BP iterations at every scale.
        5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_is_nonempty_and_sorted() {
        for e in [Effort::Smoke, Effort::Quick, Effort::Full] {
            let sweep = e.thread_sweep();
            assert!(!sweep.is_empty());
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(sweep[0], 1);
        }
    }

    #[test]
    fn effort_orders_scales() {
        assert!(Effort::Smoke.rmat_scale() < Effort::Quick.rmat_scale());
        assert!(Effort::Quick.rmat_scale() < Effort::Full.rmat_scale());
        assert!(Effort::Smoke.in_memory_divisor() > Effort::Full.in_memory_divisor());
    }
}
