//! CI bench regression gate: compares a fresh `CRITERION_JSON` result
//! file against a committed `BENCH_*.json` baseline and fails (exit 1)
//! when any benchmark's median regressed beyond the tolerance factor.
//!
//! ```text
//! bench_gate <fresh.json> <baseline.json> [tolerance]
//! ```
//!
//! The tolerance (default 1.5) is deliberately generous: CI runners
//! are noisy shared machines, and the gate exists to catch *real*
//! regressions — a pipeline change that doubles the superstep time —
//! not scheduling jitter. Benchmarks present in only one of the two
//! files are reported but do not fail the gate (new benchmarks land
//! before their baselines do). Improvements are reported as such;
//! refresh the committed baseline when they are real.
//!
//! Ids containing `reference` are reported but never gated: those are
//! the retained allocate-per-superstep ablation baselines, kept for
//! comparison only — their allocator- and scheduler-bound timings
//! swing far more than the production pipelines', and a "regression"
//! there carries no signal about the shipped code.

use std::process::ExitCode;

/// One `(id, median_ns)` pair from a results file.
fn parse_medians(json: &str) -> Vec<(String, u64)> {
    // The vendored criterion writes one object per line with stable
    // key order; this extracts the two fields of interest without a
    // JSON dependency, tolerating whitespace variations.
    let mut out = Vec::new();
    for obj in json.split('{').skip(1) {
        let id = match extract_str(obj, "\"id\"") {
            Some(v) => v,
            None => continue,
        };
        let median = match extract_u64(obj, "\"median_ns\"") {
            Some(v) => v,
            None => continue,
        };
        out.push((id, median));
    }
    out
}

fn extract_str(obj: &str, key: &str) -> Option<String> {
    let at = obj.find(key)? + key.len();
    let rest = &obj[at..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

fn extract_u64(obj: &str, key: &str) -> Option<u64> {
    let at = obj.find(key)? + key.len();
    let rest = obj[at..].trim_start_matches([':', ' ']);
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() < 3 {
        eprintln!("usage: bench_gate <fresh.json> <baseline.json> [tolerance]");
        return ExitCode::FAILURE;
    }
    let tolerance: f64 = args
        .get(3)
        .map(|t| t.parse().expect("tolerance must be a number"))
        .unwrap_or(1.5);
    let fresh_raw = std::fs::read_to_string(&args[1])
        .unwrap_or_else(|e| panic!("cannot read fresh results {}: {e}", args[1]));
    let base_raw = std::fs::read_to_string(&args[2])
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", args[2]));
    let fresh = parse_medians(&fresh_raw);
    let baseline = parse_medians(&base_raw);
    if fresh.is_empty() || baseline.is_empty() {
        eprintln!(
            "bench_gate: no parsable results (fresh {}, baseline {})",
            fresh.len(),
            baseline.len()
        );
        return ExitCode::FAILURE;
    }

    let mut failed = false;
    let mut compared = 0usize;
    for (id, fresh_median) in &fresh {
        let Some((_, base_median)) = baseline.iter().find(|(b, _)| b == id) else {
            println!(
                "NEW        {id}: {:.1} ms (no baseline)",
                *fresh_median as f64 / 1e6
            );
            continue;
        };
        let gated = !id.contains("reference");
        compared += usize::from(gated);
        let ratio = *fresh_median as f64 / (*base_median).max(1) as f64;
        let verdict = if !gated {
            "ABLATION "
        } else if ratio > tolerance {
            failed = true;
            "REGRESSED"
        } else if ratio < 1.0 / tolerance {
            "IMPROVED "
        } else {
            "OK       "
        };
        println!(
            "{verdict}  {id}: {:.1} ms vs baseline {:.1} ms ({ratio:.2}x, tolerance {tolerance:.2}x)",
            *fresh_median as f64 / 1e6,
            *base_median as f64 / 1e6,
        );
    }
    for (id, base_median) in &baseline {
        if !fresh.iter().any(|(f, _)| f == id) {
            println!(
                "MISSING    {id}: baseline {:.1} ms had no fresh run",
                *base_median as f64 / 1e6
            );
        }
    }
    if compared == 0 {
        eprintln!("bench_gate: no overlapping benchmark ids between fresh and baseline");
        return ExitCode::FAILURE;
    }
    if failed {
        eprintln!("bench_gate: median regression beyond {tolerance:.2}x tolerance");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
  {"id": "g/a", "samples": 10, "min_ns": 1, "mean_ns": 2, "median_ns": 100000, "throughput_kind": "elements", "throughput_count": 5},
  {"id": "g/b", "samples": 10, "min_ns": 1, "mean_ns": 2, "median_ns": 200000}
]"#;

    #[test]
    fn parses_ids_and_medians() {
        let m = parse_medians(SAMPLE);
        assert_eq!(
            m,
            vec![("g/a".to_string(), 100000), ("g/b".to_string(), 200000)]
        );
    }

    #[test]
    fn tolerates_compact_json() {
        let m = parse_medians(r#"[{"id":"x","median_ns":42}]"#);
        assert_eq!(m, vec![("x".to_string(), 42)]);
    }
}
