//! Prints the fig12a_runtimes report; pass `smoke`/`quick`/`full` as the
//! first argument (or set `XSTREAM_EFFORT`) to pick the scale.

fn main() {
    let effort = xstream_bench::Effort::from_env();
    print!("{}", xstream_bench::figs::fig12_runtimes::report(effort));
}
