//! Regenerates every table and figure of the paper into `results/`.
//!
//! Usage: `cargo run --release -p xstream-bench --bin run_all [smoke|quick|full]`
//!
//! Writes one `results/figNN_*.txt` per experiment and echoes each
//! report to stdout as it completes, so partial progress survives an
//! interrupted run.

use std::fs;
use std::path::Path;

use xstream_bench::figs;
use xstream_bench::Effort;

fn main() {
    let effort = Effort::from_env();
    let out_dir = Path::new("results");
    fs::create_dir_all(out_dir).expect("create results dir");

    type Report = fn(Effort) -> String;
    let experiments: Vec<(&str, Report)> = vec![
        ("fig08_membw", figs::fig08_membw::report),
        ("fig09_diskbw", figs::fig09_diskbw::report),
        ("fig10_datasets", figs::fig10_datasets::report),
        ("fig11_seqrand", figs::fig11_seqrand::report),
        ("fig12_runtimes", figs::fig12_runtimes::report),
        ("fig13_hyperanf", figs::fig13_hyperanf::report),
        ("fig14_strong_scaling", figs::fig14_strong_scaling::report),
        ("fig15_io_parallel", figs::fig15_io_parallel::report),
        ("fig16_scale_devices", figs::fig16_scale_devices::report),
        ("fig17_ingest", figs::fig17_ingest::report),
        ("fig18_sort_vs_stream", figs::fig18_sort_vs_stream::report),
        ("fig19_bfs_baselines", figs::fig19_bfs_baselines::report),
        ("fig20_ligra", figs::fig20_ligra::report),
        ("fig21_memrefs", figs::fig21_memrefs::report),
        ("fig22_graphchi", figs::fig22_graphchi::report),
        ("fig23_bwtrace", figs::fig23_bwtrace::report),
        ("fig24_partitions", figs::fig24_partitions::report),
        ("fig25_shuffle_stages", figs::fig25_shuffle_stages::report),
        ("fig26_iomodel", figs::fig26_iomodel::report),
    ];

    for (name, run) in experiments {
        let t0 = std::time::Instant::now();
        let report = run(effort);
        let elapsed = t0.elapsed();
        println!("{report}");
        println!("[{name} done in {elapsed:.1?}]\n");
        fs::write(out_dir.join(format!("{name}.txt")), &report)
            .unwrap_or_else(|e| eprintln!("warning: could not write {name}: {e}"));
    }
}
