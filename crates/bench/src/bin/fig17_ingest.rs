//! Prints the fig17_ingest report; pass `smoke`/`quick`/`full` as the
//! first argument (or set `XSTREAM_EFFORT`) to pick the scale.

fn main() {
    let effort = xstream_bench::Effort::from_env();
    print!("{}", xstream_bench::figs::fig17_ingest::report(effort));
}
