//! Prints the design-decision ablation report (work stealing, §3.2
//! optimizations, scatter-buffer size); pass `smoke`/`quick`/`full`
//! as the first argument to pick the scale.

fn main() {
    let effort = xstream_bench::Effort::from_env();
    print!("{}", xstream_bench::figs::ablations::report(effort));
}
