//! Graph substrate for X-Stream.
//!
//! X-Stream consumes a completely *unordered* list of directed edges
//! (paper §2); this crate provides that representation plus everything
//! the evaluation needs around it:
//!
//! * [`edgelist::EdgeList`] — the unordered edge-list
//!   container and its transforms (undirected expansion, reverse edges,
//!   random weights),
//! * synthetic generators ([`rmat`], [`generators`]) including the
//!   Graph500-parameterized RMAT used throughout the paper's scaling
//!   studies,
//! * stand-ins for the paper's real-world datasets
//!   ([`datasets`], Fig. 10),
//! * a binary on-disk edge format ([`fileio`]) for the out-of-core
//!   engine,
//! * streaming derivations over edge files ([`transform`]: chunk-level
//!   undirected/bidirectional mirroring, one-pass degree scans) so the
//!   out-of-core path never materializes a graph,
//! * external-dataset ingestion ([`import`]: SNAP-style text and raw
//!   binary id pairs → `.xse`, chunked parallel parse),
//! * CSR/CSC adjacency construction ([`csr`]) for the index-based
//!   comparison systems, and
//! * edge-list sorting baselines ([`sort`]) for the sorting-vs-streaming
//!   experiment (Fig. 18).

pub mod csr;
pub mod datasets;
pub mod edgelist;
pub mod fileio;
pub mod generators;
pub mod import;
pub mod rmat;
pub mod sort;
pub mod transform;

pub use csr::Csr;
pub use edgelist::EdgeList;
pub use rmat::{Rmat, RmatParams};
pub use transform::MirrorMode;
