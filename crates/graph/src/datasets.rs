//! Stand-ins for the paper's datasets (Fig. 10).
//!
//! The paper's real-world graphs are not redistributable here, so each
//! is replaced by a synthetic generator chosen to preserve the property
//! the evaluation exercises (see DESIGN.md §2), at a size scaled to the
//! experiment budget. [`Dataset::paper_vertices`]/[`paper_edges`]
//! record the original sizes so the Fig. 10 table can be regenerated
//! alongside the stand-in sizes.
//!
//! [`paper_edges`]: Dataset::paper_edges

use crate::edgelist::EdgeList;
use crate::generators;
use crate::rmat::Rmat;

/// Which storage tier the paper places a dataset in (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Processed by the in-memory engine.
    InMemory,
    /// Processed by the out-of-core engine.
    OutOfCore,
}

/// Graph family of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Directed graph.
    Directed,
    /// Undirected graph (stored as directed pairs).
    Undirected,
    /// Bipartite user→item rating graph.
    Bipartite,
}

/// One dataset of the paper's Fig. 10 with its synthetic stand-in.
#[derive(Debug, Clone, Copy)]
pub struct Dataset {
    /// Paper dataset name.
    pub name: &'static str,
    /// Vertices in the paper's original dataset.
    pub paper_vertices: u64,
    /// Edges in the paper's original dataset.
    pub paper_edges: u64,
    /// Graph family.
    pub kind: Kind,
    /// Storage tier in the paper.
    pub tier: Tier,
}

/// The Fig. 10 dataset table.
pub const DATASETS: &[Dataset] = &[
    Dataset {
        name: "amazon0601",
        paper_vertices: 403_394,
        paper_edges: 3_387_388,
        kind: Kind::Directed,
        tier: Tier::InMemory,
    },
    Dataset {
        name: "cit-Patents",
        paper_vertices: 3_774_768,
        paper_edges: 16_518_948,
        kind: Kind::Directed,
        tier: Tier::InMemory,
    },
    Dataset {
        name: "soc-livejournal",
        paper_vertices: 4_847_571,
        paper_edges: 68_993_773,
        kind: Kind::Directed,
        tier: Tier::InMemory,
    },
    Dataset {
        name: "dimacs-usa",
        paper_vertices: 23_947_347,
        paper_edges: 58_333_344,
        kind: Kind::Directed,
        tier: Tier::InMemory,
    },
    Dataset {
        name: "Twitter",
        paper_vertices: 41_700_000,
        paper_edges: 1_400_000_000,
        kind: Kind::Directed,
        tier: Tier::OutOfCore,
    },
    Dataset {
        name: "Friendster",
        paper_vertices: 65_600_000,
        paper_edges: 1_800_000_000,
        kind: Kind::Undirected,
        tier: Tier::OutOfCore,
    },
    Dataset {
        name: "sk-2005",
        paper_vertices: 50_600_000,
        paper_edges: 1_900_000_000,
        kind: Kind::Directed,
        tier: Tier::OutOfCore,
    },
    Dataset {
        name: "yahoo-web",
        paper_vertices: 1_400_000_000,
        paper_edges: 6_600_000_000,
        kind: Kind::Directed,
        tier: Tier::OutOfCore,
    },
    Dataset {
        name: "Netflix",
        paper_vertices: 500_000,
        paper_edges: 100_000_000,
        kind: Kind::Bipartite,
        tier: Tier::OutOfCore,
    },
];

/// Looks a dataset up by its paper name.
pub fn by_name(name: &str) -> Option<&'static Dataset> {
    DATASETS.iter().find(|d| d.name == name)
}

impl Dataset {
    /// Generates the synthetic stand-in, down-scaled by `divisor`
    /// (vertices and edges are divided by roughly this factor; 1 means
    /// paper scale, which is infeasible for the out-of-core graphs in a
    /// session — benches use divisors recorded in EXPERIMENTS.md).
    pub fn generate(&self, divisor: u64) -> EdgeList {
        let divisor = divisor.max(1);
        let v = (self.paper_vertices / divisor).max(64) as usize;
        let e = (self.paper_edges / divisor).max(256) as usize;
        let seed = 0xda7a_0000 ^ self.name.len() as u64;
        match self.name {
            // Road network: the property that matters is huge diameter.
            "dimacs-usa" => {
                let side = (v as f64).sqrt() as usize;
                generators::grid2d(side.max(2), side.max(2))
            }
            // Rating graph for ALS.
            "Netflix" => {
                // Paper: 480K users, 17.7K movies, ~100M ratings.
                let users = (v * 24) / 25;
                let items = v - users;
                generators::bipartite(users.max(8), items.max(4), e, seed)
            }
            // Web crawls: host locality + power-law hubs.
            "sk-2005" | "yahoo-web" => {
                let degree = (e / v).max(1);
                generators::webgraph(v, degree, 64, seed)
            }
            // Social graphs: preferential attachment.
            "Twitter" | "Friendster" | "soc-livejournal" => {
                let degree = (e / v).max(1);
                let g = generators::preferential_attachment(v, degree, seed);
                if self.kind == Kind::Undirected {
                    g.to_undirected()
                } else {
                    g
                }
            }
            // Product/citation networks: RMAT at matched density.
            _ => {
                let scale = (v as f64).log2().ceil() as u32;
                let ef = (e >> scale).max(1);
                Rmat::new(scale)
                    .with_edge_factor(ef)
                    .with_seed(seed)
                    .generate()
            }
        }
    }
}

/// A paper-style RMAT "scale n" graph: `2^n` vertices, `2^(n+4)`
/// directed edges, undirected expansion as used in §5.2's synthetic
/// experiments.
pub fn rmat_scale(n: u32) -> EdgeList {
    Rmat::new(n).generate_undirected()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_row_count() {
        assert_eq!(DATASETS.len(), 9);
        assert!(by_name("Twitter").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn generate_scaled_stand_ins() {
        for d in DATASETS {
            let g = d.generate(d.paper_edges / 50_000 + 1);
            assert!(g.num_vertices() >= 4, "{}", d.name);
            assert!(g.num_edges() >= 64, "{}: {}", d.name, g.num_edges());
            assert!(g.validate().is_ok(), "{}", d.name);
        }
    }

    #[test]
    fn rmat_scale_matches_definition() {
        let g = rmat_scale(8);
        assert_eq!(g.num_vertices(), 256);
        // 2^(8+4) directed edges, doubled by the undirected expansion
        // minus self-loops kept single.
        assert!(g.num_edges() >= 1 << 12);
        assert!(g.num_edges() <= 1 << 13);
    }

    #[test]
    fn dimacs_stand_in_is_high_diameter() {
        let d = by_name("dimacs-usa").unwrap();
        let g = d.generate(1000);
        // A grid over ~24K vertices has side ~150, so diameter ~300 —
        // vastly above log(V); just sanity-check the shape here.
        assert!(g.num_vertices() > 10_000);
    }
}
