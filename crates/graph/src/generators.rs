//! Synthetic graph generators standing in for the paper's real-world
//! datasets (Fig. 10).
//!
//! Each generator preserves the structural property the paper's
//! evaluation actually exercises:
//!
//! * [`preferential_attachment`] — heavy-tailed social graphs
//!   (Twitter, Friendster, LiveJournal stand-ins),
//! * [`grid2d`] — the DIMACS USA road network's defining property is
//!   its enormous diameter (Fig. 13 measures 8122 steps); a 2-D grid
//!   has diameter `Θ(√V)`,
//! * [`bipartite`] — the Netflix rating graph for ALS,
//! * [`webgraph`] — host-locality web graphs (sk-2005, yahoo-web
//!   stand-ins) with power-law in-degree,
//! * [`erdos_renyi`] — uniform random baseline.

use crate::edgelist::EdgeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xstream_core::{Edge, VertexId};

/// Uniform `G(n, m)` random graph with `m` directed edges.
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64) -> EdgeList {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let src = rng.gen_range(0..num_vertices) as VertexId;
        let dst = rng.gen_range(0..num_vertices) as VertexId;
        edges.push(Edge::new(src, dst));
    }
    EdgeList::from_parts_unchecked(num_vertices, edges)
}

/// Preferential-attachment (Barabási–Albert style) graph: each new
/// vertex attaches `degree` directed edges to endpoints sampled from
/// previously placed edge endpoints, yielding a power-law in-degree —
/// the structure of the social graphs in the paper's dataset table.
pub fn preferential_attachment(num_vertices: usize, degree: usize, seed: u64) -> EdgeList {
    assert!(num_vertices >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity(num_vertices.saturating_mul(degree));
    // Endpoint pool for proportional sampling ("repeated nodes" method).
    let mut pool: Vec<VertexId> = vec![0, 1];
    edges.push(Edge::new(1, 0));
    for v in 2..num_vertices as VertexId {
        for _ in 0..degree.max(1) {
            let target = if rng.gen::<f64>() < 0.9 {
                pool[rng.gen_range(0..pool.len())]
            } else {
                // Occasional uniform attachment keeps the graph from
                // being a pure star forest.
                rng.gen_range(0..v)
            };
            edges.push(Edge::new(v, target));
            pool.push(target);
            pool.push(v);
        }
    }
    EdgeList::from_parts_unchecked(num_vertices, edges)
}

/// A `rows x cols` 2-D grid with 4-neighbour connectivity, as a pair of
/// directed edges per lattice link. Diameter is `rows + cols - 2`:
/// the high-diameter stand-in for the DIMACS USA road network.
pub fn grid2d(rows: usize, cols: usize) -> EdgeList {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut edges = Vec::with_capacity(4 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push(Edge::new(id(r, c), id(r, c + 1)));
                edges.push(Edge::new(id(r, c + 1), id(r, c)));
            }
            if r + 1 < rows {
                edges.push(Edge::new(id(r, c), id(r + 1, c)));
                edges.push(Edge::new(id(r + 1, c), id(r, c)));
            }
        }
    }
    EdgeList::from_parts_unchecked(n, edges)
}

/// A bipartite rating graph: `users` user vertices (ids `0..users`)
/// and `items` item vertices (ids `users..users+items`), with
/// `ratings` weighted edges from users to items. Item popularity is
/// Zipf-like, as in the Netflix dataset the paper uses for ALS.
///
/// Ratings are in `[1, 5]`, stored in the edge weight.
pub fn bipartite(users: usize, items: usize, ratings: usize, seed: u64) -> EdgeList {
    assert!(items >= 1 && users >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = users + items;
    let mut edges = Vec::with_capacity(ratings);
    for _ in 0..ratings {
        let user = rng.gen_range(0..users) as VertexId;
        // Zipf-ish item choice via squaring a uniform variate.
        let z = rng.gen::<f64>();
        let item = ((z * z * items as f64) as usize).min(items - 1);
        let rating = rng.gen_range(1..=5) as f32;
        edges.push(Edge::weighted(user, (users + item) as VertexId, rating));
    }
    EdgeList::from_parts_unchecked(n, edges)
}

/// Number of user vertices in a [`bipartite`] graph given its parts —
/// helper so algorithms can recover the split.
pub fn bipartite_split(users: usize) -> usize {
    users
}

/// A web-graph stand-in: vertices are grouped into "hosts" of
/// `host_size` consecutive ids; each vertex links mostly within its
/// host (locality) plus a few power-law-popular global hubs, which is
/// the structure of sk-2005-like crawls.
pub fn webgraph(num_vertices: usize, degree: usize, host_size: usize, seed: u64) -> EdgeList {
    let mut rng = StdRng::seed_from_u64(seed);
    let host_size = host_size.max(2);
    let mut edges = Vec::with_capacity(num_vertices * degree);
    for v in 0..num_vertices {
        let host = v / host_size;
        let host_lo = host * host_size;
        let host_hi = (host_lo + host_size).min(num_vertices);
        for _ in 0..degree {
            let dst = if rng.gen::<f64>() < 0.8 {
                // Intra-host link.
                rng.gen_range(host_lo..host_hi)
            } else {
                // Global hub: power-law via inverse sampling.
                let z = rng.gen::<f64>();
                ((z * z * z * num_vertices as f64) as usize).min(num_vertices - 1)
            };
            edges.push(Edge::new(v as VertexId, dst as VertexId));
        }
    }
    EdgeList::from_parts_unchecked(num_vertices, edges)
}

/// A directed path `0 -> 1 -> ... -> n-1`; the pathological
/// maximum-diameter input used in tests.
pub fn path(num_vertices: usize) -> EdgeList {
    let mut edges = Vec::with_capacity(num_vertices.saturating_sub(1));
    for v in 1..num_vertices {
        edges.push(Edge::new((v - 1) as VertexId, v as VertexId));
    }
    EdgeList::from_parts_unchecked(num_vertices, edges)
}

/// A directed cycle over `n` vertices; smallest strongly connected
/// high-diameter input, used in SCC tests.
pub fn cycle(num_vertices: usize) -> EdgeList {
    let mut edges = Vec::with_capacity(num_vertices);
    for v in 0..num_vertices {
        edges.push(Edge::new(
            v as VertexId,
            ((v + 1) % num_vertices) as VertexId,
        ));
    }
    EdgeList::from_parts_unchecked(num_vertices, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_counts() {
        let g = erdos_renyi(100, 500, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn grid_edge_count() {
        let g = grid2d(3, 4);
        // Links: 3*3 horizontal + 2*4 vertical = 17, doubled = 34.
        assert_eq!(g.num_edges(), 34);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn pa_graph_is_heavy_tailed() {
        let g = preferential_attachment(2000, 8, 3);
        assert!(g.validate().is_ok());
        let max_in = *g.in_degrees().iter().max().unwrap();
        assert!(max_in > 50, "expected hubs, max in-degree {max_in}");
    }

    #[test]
    fn bipartite_edges_point_user_to_item() {
        let users = 50;
        let g = bipartite(users, 20, 400, 9);
        for e in g.edges() {
            assert!((e.src as usize) < users);
            assert!((e.dst as usize) >= users);
            assert!((1.0..=5.0).contains(&e.weight));
        }
    }

    #[test]
    fn webgraph_in_range() {
        let g = webgraph(1000, 8, 50, 4);
        assert!(g.validate().is_ok());
        assert_eq!(g.num_edges(), 8000);
    }

    #[test]
    fn path_and_cycle() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(erdos_renyi(50, 100, 7), erdos_renyi(50, 100, 7));
        assert_eq!(
            preferential_attachment(100, 4, 7),
            preferential_attachment(100, 4, 7)
        );
        assert_eq!(webgraph(100, 4, 10, 7), webgraph(100, 4, 10, 7));
    }
}
