//! RMAT recursive-matrix graph generator (Chakrabarti et al., SDM'04).
//!
//! The paper generates its synthetic scale-free graphs with RMAT at an
//! average degree of 16, as recommended by Graph500, and uses the term
//! *scale n* for a graph with `2^n` vertices and `2^(n+4)` edges (§5.2).

use crate::edgelist::EdgeList;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xstream_core::{Edge, VertexId};

/// RMAT quadrant probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Level-wise multiplicative noise applied to the quadrant
    /// probabilities, as in the Graph500 reference implementation, to
    /// avoid exactly self-similar structure.
    pub noise: f64,
}

impl Default for RmatParams {
    /// Graph500 parameters: A=0.57, B=0.19, C=0.19 (D=0.05).
    fn default() -> Self {
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }
}

impl RmatParams {
    /// Probability of the bottom-right quadrant.
    #[inline]
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// RMAT generator configured for a particular scale.
#[derive(Debug, Clone)]
pub struct Rmat {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges per vertex (Graph500 and the paper use 16).
    pub edge_factor: usize,
    /// Quadrant probabilities.
    pub params: RmatParams,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Rmat {
    /// Creates a generator at `scale` with the paper's defaults
    /// (degree 16, Graph500 probabilities).
    pub fn new(scale: u32) -> Self {
        Self {
            scale,
            edge_factor: 16,
            params: RmatParams::default(),
            seed: 0x5eed_0000 + scale as u64,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the edge factor.
    pub fn with_edge_factor(mut self, edge_factor: usize) -> Self {
        self.edge_factor = edge_factor;
        self
    }

    /// Number of vertices (`2^scale`).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of generated directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_vertices() * self.edge_factor
    }

    /// Samples one edge.
    fn sample_edge<R: Rng>(&self, rng: &mut R) -> Edge {
        let mut src = 0usize;
        let mut dst = 0usize;
        let RmatParams { a, b, c, noise } = self.params;
        let d = self.params.d();
        for level in 0..self.scale {
            // Multiplicative noise per level keeps the degree
            // distribution heavy-tailed without exact self-similarity.
            let m = 1.0 + noise * (rng.gen::<f64>() - 0.5);
            let (la, lb, lc, ld) = (a * m, b / m, c / m, d * m);
            let total = la + lb + lc + ld;
            let r = rng.gen::<f64>() * total;
            let bit = 1usize << (self.scale - 1 - level);
            if r < la {
                // Top-left: neither bit set.
            } else if r < la + lb {
                dst |= bit;
            } else if r < la + lb + lc {
                src |= bit;
            } else {
                src |= bit;
                dst |= bit;
            }
        }
        Edge::new(src as VertexId, dst as VertexId)
    }

    /// Generates the full unordered edge list.
    pub fn generate(&self) -> EdgeList {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut edges = Vec::with_capacity(self.num_edges());
        for _ in 0..self.num_edges() {
            edges.push(self.sample_edge(&mut rng));
        }
        // Permute vertex ids so that the heavy vertices are not all
        // clustered at id 0 — the Graph500 generator does the same; it
        // also removes the partition-skew artifact of raw RMAT.
        let perm = random_permutation(self.num_vertices(), self.seed ^ 0x9e37_79b9);
        for e in &mut edges {
            e.src = perm[e.src as usize];
            e.dst = perm[e.dst as usize];
        }
        EdgeList::from_parts_unchecked(self.num_vertices(), edges)
    }

    /// Generates the undirected expansion used by the paper's synthetic
    /// experiments (each edge becomes a directed pair).
    pub fn generate_undirected(&self) -> EdgeList {
        self.generate().to_undirected()
    }
}

/// A uniformly random permutation of `0..n`.
fn random_permutation(n: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
    // Fisher-Yates.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_arithmetic() {
        let g = Rmat::new(10);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 16384);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Rmat::new(8).generate();
        let b = Rmat::new(8).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Rmat::new(8).generate();
        let b = Rmat::new(8).with_seed(1234).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn edges_in_range() {
        let g = Rmat::new(9).generate();
        assert!(g.validate().is_ok());
        assert_eq!(g.num_edges(), 512 * 16);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Scale-free-ness smoke test: the max out-degree should be far
        // above the average degree of 16.
        let g = Rmat::new(12).generate();
        let max = *g.out_degrees().iter().max().unwrap();
        assert!(max > 64, "expected heavy tail, max degree {max}");
    }

    #[test]
    fn permutation_is_a_bijection() {
        let p = random_permutation(1000, 42);
        let mut seen = vec![false; 1000];
        for &v in &p {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }
}
