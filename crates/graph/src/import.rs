//! Dataset ingestion: external edge-list formats → the binary `.xse`
//! format.
//!
//! Real published graphs (the paper's Twitter/Friendster regime) ship
//! as SNAP-style text edge lists or raw binary id pairs, not as
//! X-Stream edge files. `xstream import` — backed by [`import`] here —
//! converts them *streaming*: the source is read in bounded chunks,
//! text chunks are parsed in parallel on a
//! [`WorkerPool`] (one slice of the
//! chunk per worker, pooled per-worker edge buffers), and the parsed
//! edges go straight to a streaming [`EdgeFileWriter`] that fixes up
//! the header at the end. Peak memory is O(chunk × threads),
//! independent of the graph size — the same discipline as the
//! out-of-core engine's pre-processing (paper §3.2).
//!
//! Supported sources:
//!
//! * **SNAP text** (`src dst [weight]` per line): `#`/`%` comment
//!   lines, blank lines and `\r\n` endings are tolerated; tokens after
//!   the weight column (timestamps in several SNAP datasets) are
//!   ignored; the vertex count is discovered as `max id + 1` unless
//!   overridden.
//! * **Raw binary pairs**: back-to-back little-endian `(src, dst)`
//!   pairs, 32-bit ([`ImportFormat::PairsU32`]) or 64-bit
//!   ([`ImportFormat::PairsU64`]) ids, no weights.

use std::fs::File;
use std::io::Read;
use std::path::Path;

use crate::fileio::EdgeFileWriter;
use crate::transform::MirrorMode;
use xstream_core::record::RecordIter;
use xstream_core::{Edge, Error, Result, VertexId};
use xstream_storage::pool::{PerWorkerPtr, WorkerPool};

/// Bytes of source text (or binary pairs) ingested per chunk.
const IMPORT_CHUNK_BYTES: usize = 1 << 20;

/// Longest single text line the parser accepts before concluding the
/// source is not a text edge list. Caps the chunk-widening loop so a
/// binary file fed to the text parser (a forgotten `--format`) fails
/// fast instead of buffering the whole input in RAM.
const MAX_LINE_BYTES: usize = 8 << 20;

/// Source encodings [`import`] understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ImportFormat {
    /// SNAP-style whitespace-separated text: `src dst [weight]`.
    #[default]
    SnapText,
    /// Raw little-endian `u32` id pairs, 8 bytes per edge.
    PairsU32,
    /// Raw little-endian `u64` id pairs, 16 bytes per edge.
    PairsU64,
}

impl ImportFormat {
    /// Parses the CLI form (`snap`/`text`, `pairs32`, `pairs64`).
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "snap" | "text" | "txt" | "tsv" | "edgelist" => Some(Self::SnapText),
            "pairs32" | "pairs-u32" | "bin32" => Some(Self::PairsU32),
            "pairs64" | "pairs-u64" | "bin64" => Some(Self::PairsU64),
            _ => None,
        }
    }
}

/// Knobs for [`import`].
#[derive(Debug, Clone)]
pub struct ImportOptions {
    /// Source encoding.
    pub format: ImportFormat,
    /// Explicit vertex count; `None` discovers `max id + 1`. An
    /// explicit count below the highest referenced id is rejected.
    pub num_vertices: Option<usize>,
    /// Also write the reverse of every edge (self-loops stay single),
    /// mirroring [`MirrorMode::Undirected`] at import time.
    pub undirected: bool,
    /// Parser threads for text sources.
    pub threads: usize,
}

impl Default for ImportOptions {
    fn default() -> Self {
        Self {
            format: ImportFormat::SnapText,
            num_vertices: None,
            undirected: false,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// What an [`import`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImportReport {
    /// Final declared vertex count.
    pub num_vertices: usize,
    /// Edges written (after any undirected mirroring).
    pub num_edges: usize,
    /// Comment/blank lines skipped (text sources only).
    pub skipped_lines: usize,
}

/// Converts `src` into the binary edge format at `dst`, streaming.
pub fn import(src: &Path, dst: &Path, opts: &ImportOptions) -> Result<ImportReport> {
    // Open the source *before* the destination is created: creating
    // `dst` truncates it, and `src == dst` (same path or a link to
    // the same file) would otherwise destroy the user's input. The
    // dev/inode check catches links on Unix; the canonical-path check
    // catches the plain same-path case everywhere.
    let src_file = File::open(src)?;
    let same = match std::fs::metadata(dst) {
        Ok(dst_meta) => {
            same_file(&src_file.metadata()?, &dst_meta)
                || matches!(
                    (std::fs::canonicalize(src), std::fs::canonicalize(dst)),
                    (Ok(a), Ok(b)) if a == b
                )
        }
        Err(_) => false,
    };
    if same {
        return Err(Error::InvalidInput(format!(
            "{} and {} are the same file; importing would overwrite the source",
            src.display(),
            dst.display()
        )));
    }
    let mut writer = EdgeFileWriter::create(dst)?;
    let imported = (|| -> Result<usize> {
        let skipped_lines = match opts.format {
            ImportFormat::SnapText => import_text(src_file, &mut writer, opts)?,
            ImportFormat::PairsU32 => {
                import_pairs(src, src_file, &mut writer, opts, false)?;
                0
            }
            ImportFormat::PairsU64 => {
                import_pairs(src, src_file, &mut writer, opts, true)?;
                0
            }
        };
        Ok(skipped_lines)
    })();
    let finished = imported.and_then(|skipped_lines| {
        writer
            .finish(opts.num_vertices)
            .map(|(num_vertices, num_edges)| ImportReport {
                num_vertices,
                num_edges,
                skipped_lines,
            })
    });
    if finished.is_err() {
        // Leave no half-written artifact behind: a partial file with
        // the placeholder header would later be rejected with a
        // misleading "truncated or corrupt" message.
        let _ = std::fs::remove_file(dst);
    }
    finished
}

/// Whether two metadata records name the same underlying file.
#[cfg(unix)]
fn same_file(a: &std::fs::Metadata, b: &std::fs::Metadata) -> bool {
    use std::os::unix::fs::MetadataExt;
    a.dev() == b.dev() && a.ino() == b.ino()
}

/// Conservative non-Unix fallback: never claims identity (the Unix
/// dev/inode check is the real guard on the platforms this runs on).
#[cfg(not(unix))]
fn same_file(_a: &std::fs::Metadata, _b: &std::fs::Metadata) -> bool {
    false
}

/// Per-worker parse output, pooled across chunks.
#[derive(Default)]
struct ParseSlot {
    edges: Vec<Edge>,
    skipped: usize,
    error: Option<String>,
}

fn import_text(mut file: File, writer: &mut EdgeFileWriter, opts: &ImportOptions) -> Result<usize> {
    let threads = opts.threads.max(1);
    let pool = WorkerPool::new(threads - 1);
    let mut slots: Vec<ParseSlot> = (0..threads).map(|_| ParseSlot::default()).collect();
    let mut data: Vec<u8> = Vec::new();
    let mut skipped = 0usize;
    let mut eof = false;
    let mut target = IMPORT_CHUNK_BYTES;
    loop {
        // Top the staging buffer up to the current target.
        while !eof && data.len() < target {
            let old = data.len();
            data.resize(target, 0);
            let n = file.read(&mut data[old..])?;
            data.truncate(old + n);
            if n == 0 {
                eof = true;
            }
        }
        if data.is_empty() {
            break;
        }
        // Parse only whole lines; the partial tail carries over.
        let end = if eof {
            data.len()
        } else if let Some(i) = data.iter().rposition(|&b| b == b'\n') {
            i + 1
        } else {
            // One line longer than the chunk: widen and refill — up
            // to the line-length cap, past which this is clearly not
            // a text edge list (keeps memory bounded when a binary
            // file is fed to the text parser).
            if target >= MAX_LINE_BYTES {
                return Err(Error::InvalidInput(format!(
                    "no line break within {MAX_LINE_BYTES} bytes — not a text edge \
                     list? (binary id pairs need --format pairs32/pairs64)"
                )));
            }
            target += IMPORT_CHUNK_BYTES;
            continue;
        };
        skipped += parse_chunk(&data[..end], &pool, &mut slots)?;
        for slot in &mut slots {
            if opts.undirected {
                MirrorMode::Undirected.mirror_in_place(&mut slot.edges);
            }
            writer.append(&slot.edges)?;
        }
        data.drain(..end);
        target = IMPORT_CHUNK_BYTES;
    }
    Ok(skipped)
}

/// Parses one chunk of whole lines in parallel: worker `t` takes the
/// `t`-th newline-aligned slice into its own pooled [`ParseSlot`].
/// Returns the number of comment/blank lines skipped.
fn parse_chunk(region: &[u8], pool: &WorkerPool, slots: &mut [ParseSlot]) -> Result<usize> {
    let threads = slots.len();
    let bounds = line_aligned_bounds(region, threads);
    {
        let slots_ptr = PerWorkerPtr(slots.as_mut_ptr());
        let bounds = &bounds;
        let job = |tid: usize| {
            // SAFETY: each dispatch runs every tid exactly once and
            // tid < threads == slots.len(), so these `&mut` borrows
            // are disjoint across workers.
            let slot: &mut ParseSlot = unsafe { slots_ptr.get_mut(tid) };
            slot.edges.clear();
            slot.skipped = 0;
            slot.error = None;
            parse_lines(&region[bounds[tid]..bounds[tid + 1]], slot);
        };
        pool.run(&job);
    }
    let mut skipped = 0;
    for slot in slots.iter_mut() {
        if let Some(msg) = slot.error.take() {
            return Err(Error::InvalidInput(msg));
        }
        skipped += slot.skipped;
    }
    Ok(skipped)
}

/// Splits `region` into `parts` contiguous byte ranges whose interior
/// boundaries sit just after a `\n`, as `parts + 1` offsets.
fn line_aligned_bounds(region: &[u8], parts: usize) -> Vec<usize> {
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    for t in 1..parts {
        let lo = *bounds.last().unwrap();
        let guess = (region.len() * t / parts).max(lo);
        let next = region[guess..]
            .iter()
            .position(|&b| b == b'\n')
            .map(|i| guess + i + 1)
            .unwrap_or(region.len());
        bounds.push(next.max(lo));
    }
    bounds.push(region.len());
    bounds
}

fn parse_lines(bytes: &[u8], slot: &mut ParseSlot) {
    let text = match std::str::from_utf8(bytes) {
        Ok(t) => t,
        Err(_) => {
            slot.error = Some("source is not valid UTF-8 text".to_string());
            return;
        }
    };
    for line in text.lines() {
        match parse_line(line) {
            Ok(Some(e)) => slot.edges.push(e),
            Ok(None) => slot.skipped += 1,
            Err(msg) => {
                slot.error = Some(msg);
                return;
            }
        }
    }
}

/// Parses one line: `Ok(None)` for comments/blanks, `Err` with a
/// message naming the offending line otherwise.
fn parse_line(line: &str) -> std::result::Result<Option<Edge>, String> {
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
        return Ok(None);
    }
    let mut it = t.split_whitespace();
    let src = parse_id(it.next().unwrap_or(""), t)?;
    let dst = parse_id(
        it.next()
            .ok_or_else(|| format!("missing destination vertex in line `{t}`"))?,
        t,
    )?;
    let weight = match it.next() {
        // Extra columns after the weight (timestamps etc.) are
        // tolerated; a third column that isn't numeric is not.
        Some(w) => w
            .parse::<f32>()
            .map_err(|_| format!("bad weight `{w}` in line `{t}`"))?,
        None => 0.0,
    };
    Ok(Some(Edge::weighted(src, dst, weight)))
}

fn parse_id(tok: &str, line: &str) -> std::result::Result<VertexId, String> {
    let id: u64 = tok
        .parse()
        .map_err(|_| format!("bad vertex id `{tok}` in line `{line}`"))?;
    if id >= VertexId::MAX as u64 {
        // VertexId::MAX is the engines' INVALID_VERTEX sentinel.
        return Err(format!(
            "vertex id {id} in line `{line}` exceeds the 32-bit id space"
        ));
    }
    Ok(id as VertexId)
}

fn import_pairs(
    src: &Path,
    mut file: File,
    writer: &mut EdgeFileWriter,
    opts: &ImportOptions,
    wide: bool,
) -> Result<()> {
    let pair_size = if wide { 16 } else { 8 };
    let len = file.metadata()?.len();
    if len % pair_size as u64 != 0 {
        return Err(Error::InvalidInput(format!(
            "{}: length {len} is not a whole number of {pair_size}-byte id pairs",
            src.display()
        )));
    }
    let chunk_bytes = IMPORT_CHUNK_BYTES / pair_size * pair_size;
    let mut buf = vec![0u8; chunk_bytes];
    let mut edges: Vec<Edge> = Vec::new();
    let mut remaining = len as usize;
    while remaining > 0 {
        let take = remaining.min(chunk_bytes);
        file.read_exact(&mut buf[..take])?;
        remaining -= take;
        edges.clear();
        if wide {
            for [s, d] in RecordIter::<[u64; 2]>::new(&buf[..take]) {
                if s >= VertexId::MAX as u64 || d >= VertexId::MAX as u64 {
                    return Err(Error::InvalidInput(format!(
                        "pair ({s}, {d}) exceeds the 32-bit id space"
                    )));
                }
                edges.push(Edge::new(s as VertexId, d as VertexId));
            }
        } else {
            for [s, d] in RecordIter::<[u32; 2]>::new(&buf[..take]) {
                // Same rule as the text and pairs64 paths: u32::MAX is
                // the engines' INVALID_VERTEX sentinel.
                if s == VertexId::MAX || d == VertexId::MAX {
                    return Err(Error::InvalidInput(format!(
                        "pair ({s}, {d}) uses the reserved id {}",
                        VertexId::MAX
                    )));
                }
                edges.push(Edge::new(s, d));
            }
        }
        if opts.undirected {
            MirrorMode::Undirected.mirror_in_place(&mut edges);
        }
        writer.append(&edges)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fileio::read_edge_file;
    use crate::EdgeList;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("xstream_import_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn snap_text_with_comments_blanks_and_weights() {
        let src = tmp("snap.txt");
        let dst = tmp("snap.xse");
        std::fs::write(
            &src,
            "# SNAP-style fixture\n\
             % matrix-market comment\n\
             0 1\n\
             \n\
             1 2 0.5\n\
             2 0 1.25 1699999999\n\
             \t 3   1 \r\n",
        )
        .unwrap();
        let r = import(&src, &dst, &ImportOptions::default()).unwrap();
        assert_eq!(r.num_vertices, 4);
        assert_eq!(r.num_edges, 4);
        assert_eq!(r.skipped_lines, 3);
        let g = read_edge_file(&dst).unwrap();
        assert_eq!(
            g.edges(),
            &[
                Edge::new(0, 1),
                Edge::weighted(1, 2, 0.5),
                Edge::weighted(2, 0, 1.25),
                Edge::new(3, 1),
            ]
        );
    }

    #[test]
    fn undirected_and_explicit_vertex_count() {
        let src = tmp("und.txt");
        let dst = tmp("und.xse");
        std::fs::write(&src, "0 1\n2 2\n").unwrap();
        let opts = ImportOptions {
            undirected: true,
            num_vertices: Some(10),
            ..ImportOptions::default()
        };
        let r = import(&src, &dst, &opts).unwrap();
        // Self-loop stays single; declared count wins.
        assert_eq!(r.num_vertices, 10);
        assert_eq!(r.num_edges, 3);
        let g = read_edge_file(&dst).unwrap();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn bad_lines_are_reported_with_content() {
        for (body, needle) in [
            ("0 x\n", "bad vertex id `x`"),
            ("7\n", "missing destination"),
            ("0 1 heavy\n", "bad weight"),
            ("0 4294967295\n", "id space"),
        ] {
            let src = tmp("bad.txt");
            let dst = tmp("bad.xse");
            std::fs::write(&src, body).unwrap();
            match import(&src, &dst, &ImportOptions::default()) {
                Err(Error::InvalidInput(msg)) => {
                    assert!(msg.contains(needle), "`{msg}` missing `{needle}`")
                }
                other => panic!("{body:?}: expected InvalidInput, got {other:?}"),
            }
            // A failed import leaves no half-written artifact behind.
            assert!(!dst.exists(), "{body:?}: partial output not cleaned up");
        }
    }

    #[test]
    fn undercounted_vertices_rejected() {
        let src = tmp("under.txt");
        let dst = tmp("under.xse");
        std::fs::write(&src, "0 9\n").unwrap();
        let opts = ImportOptions {
            num_vertices: Some(5),
            ..ImportOptions::default()
        };
        assert!(matches!(
            import(&src, &dst, &opts),
            Err(Error::InvalidInput(_))
        ));
    }

    #[test]
    fn binary_pair_formats_roundtrip() {
        let pairs: &[(u32, u32)] = &[(0, 1), (5, 2), (3, 3)];
        let mut narrow = Vec::new();
        let mut wide = Vec::new();
        for &(s, d) in pairs {
            narrow.extend_from_slice(&s.to_le_bytes());
            narrow.extend_from_slice(&d.to_le_bytes());
            wide.extend_from_slice(&(s as u64).to_le_bytes());
            wide.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for (format, bytes) in [
            (ImportFormat::PairsU32, narrow),
            (ImportFormat::PairsU64, wide),
        ] {
            let src = tmp("pairs.bin");
            let dst = tmp("pairs.xse");
            std::fs::write(&src, &bytes).unwrap();
            let opts = ImportOptions {
                format,
                ..ImportOptions::default()
            };
            let r = import(&src, &dst, &opts).unwrap();
            assert_eq!(r.num_edges, 3, "{format:?}");
            let g = read_edge_file(&dst).unwrap();
            let expected: Vec<Edge> = pairs.iter().map(|&(s, d)| Edge::new(s, d)).collect();
            assert_eq!(g.edges(), &expected[..], "{format:?}");
        }
        // A ragged pair file is invalid input, not a panic.
        let src = tmp("ragged.bin");
        std::fs::write(&src, [0u8; 7]).unwrap();
        let opts = ImportOptions {
            format: ImportFormat::PairsU32,
            ..ImportOptions::default()
        };
        assert!(matches!(
            import(&src, tmp("ragged.xse").as_path(), &opts),
            Err(Error::InvalidInput(_))
        ));
    }

    #[test]
    fn importing_onto_the_source_is_refused() {
        let src = tmp("self.txt");
        std::fs::write(&src, "0 1\n").unwrap();
        match import(&src, &src, &ImportOptions::default()) {
            Err(Error::InvalidInput(msg)) => assert!(msg.contains("same file"), "{msg}"),
            other => panic!("expected InvalidInput, got {other:?}"),
        }
        // The source survives untouched (no truncation happened).
        assert_eq!(std::fs::read(&src).unwrap(), b"0 1\n");
    }

    #[test]
    fn newline_free_input_fails_fast_with_bounded_memory() {
        // A binary blob fed to the text parser must be rejected at the
        // line-length cap, not buffered whole.
        let src = tmp("blob.bin");
        std::fs::write(&src, vec![b'7'; super::MAX_LINE_BYTES + 1]).unwrap();
        match import(&src, tmp("blob.xse").as_path(), &ImportOptions::default()) {
            Err(Error::InvalidInput(msg)) => assert!(msg.contains("--format"), "{msg}"),
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn pairs32_rejects_the_invalid_vertex_sentinel() {
        let src = tmp("sentinel.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        std::fs::write(&src, &bytes).unwrap();
        let opts = ImportOptions {
            format: ImportFormat::PairsU32,
            ..ImportOptions::default()
        };
        match import(&src, tmp("sentinel.xse").as_path(), &opts) {
            Err(Error::InvalidInput(msg)) => assert!(msg.contains("reserved id"), "{msg}"),
            other => panic!("expected InvalidInput, got {other:?}"),
        }
    }

    #[test]
    fn large_text_import_matches_in_memory_parse() {
        // Cross the chunk boundary several times with a multi-thread
        // pool: the parallel chunked parse must agree with a trivial
        // sequential one.
        let g = crate::generators::preferential_attachment(2000, 8, 41);
        let src = tmp("big.txt");
        let dst = tmp("big.xse");
        let mut body = String::from("# big fixture\n");
        for e in g.edges() {
            body.push_str(&format!("{} {}\n", e.src, e.dst));
        }
        std::fs::write(&src, &body).unwrap();
        let opts = ImportOptions {
            threads: 4,
            num_vertices: Some(g.num_vertices()),
            ..ImportOptions::default()
        };
        let r = import(&src, &dst, &opts).unwrap();
        assert_eq!(r.num_edges, g.num_edges());
        let back = read_edge_file(&dst).unwrap();
        let strip = |l: &EdgeList| l.edges().iter().map(|e| (e.src, e.dst)).collect::<Vec<_>>();
        assert_eq!(strip(&back), strip(&g));
    }

    #[test]
    fn format_names_parse() {
        assert_eq!(ImportFormat::parse("snap"), Some(ImportFormat::SnapText));
        assert_eq!(ImportFormat::parse("TEXT"), Some(ImportFormat::SnapText));
        assert_eq!(ImportFormat::parse("pairs32"), Some(ImportFormat::PairsU32));
        assert_eq!(ImportFormat::parse("bin64"), Some(ImportFormat::PairsU64));
        assert_eq!(ImportFormat::parse("json"), None);
    }
}
