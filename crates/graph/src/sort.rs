//! Edge-list sorting baselines for the sorting-vs-streaming experiment
//! (paper Fig. 18).
//!
//! The paper compares the time to *sort* an RMAT edge list (the
//! pre-processing step every index-based system needs) against the time
//! for X-Stream to finish whole computations on the unsorted list. Both
//! a comparison sort (libc quicksort there, [`quicksort_by_source`]
//! here) and a distribution sort exploiting the known key space
//! ([`counting_sort_by_source`]) are measured, single-threaded.

use crate::edgelist::EdgeList;
use xstream_core::Edge;

/// Sorts edges by source vertex with an in-place comparison sort.
///
/// The standard library's unstable sort is a pattern-defeating
/// quicksort, matching the paper's `qsort` baseline.
pub fn quicksort_by_source(g: &mut EdgeList) {
    g.edges_mut().sort_unstable_by_key(|e| e.src);
}

/// Sorts edges by source vertex with an out-of-place counting sort over
/// the known vertex-id key space, the paper's faster sorting baseline.
pub fn counting_sort_by_source(g: &mut EdgeList) {
    let n = g.num_vertices();
    let edges = g.edges_mut();
    let mut counts = vec![0usize; n + 1];
    for e in edges.iter() {
        counts[e.src as usize + 1] += 1;
    }
    for i in 0..n {
        counts[i + 1] += counts[i];
    }
    let mut out: Vec<Edge> = vec![Edge::new(0, 0); edges.len()];
    for e in edges.iter() {
        let slot = counts[e.src as usize];
        counts[e.src as usize] += 1;
        out[slot] = *e;
    }
    edges.copy_from_slice(&out);
}

/// Checks that `g` is sorted by source (test helper).
pub fn is_sorted_by_source(g: &EdgeList) -> bool {
    g.edges().windows(2).all(|w| w[0].src <= w[1].src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn quicksort_sorts() {
        let mut g = erdos_renyi(64, 1000, 5);
        quicksort_by_source(&mut g);
        assert!(is_sorted_by_source(&g));
    }

    #[test]
    fn counting_sort_sorts_and_matches_quicksort_keys() {
        let mut a = erdos_renyi(64, 1000, 5);
        let mut b = a.clone();
        quicksort_by_source(&mut a);
        counting_sort_by_source(&mut b);
        assert!(is_sorted_by_source(&b));
        // Same multiset of sources in the same order of keys.
        let ka: Vec<u32> = a.edges().iter().map(|e| e.src).collect();
        let kb: Vec<u32> = b.edges().iter().map(|e| e.src).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn counting_sort_is_stable() {
        use crate::edgelist::from_pairs;
        let mut g = from_pairs(3, &[(1, 0), (0, 1), (1, 2), (0, 2)]);
        counting_sort_by_source(&mut g);
        // Stability: (0,1) before (0,2), (1,0) before (1,2).
        let dsts: Vec<u32> = g.edges().iter().map(|e| e.dst).collect();
        assert_eq!(dsts, vec![1, 2, 0, 2]);
    }

    #[test]
    fn empty_list_is_fine() {
        let mut g = EdgeList::empty(10);
        quicksort_by_source(&mut g);
        counting_sort_by_source(&mut g);
        assert_eq!(g.num_edges(), 0);
    }
}
