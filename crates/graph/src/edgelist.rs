//! The unordered edge-list graph representation.

use rand::Rng;
use xstream_core::{Edge, VertexId};

/// An unordered list of directed edges over vertices `0..num_vertices`.
///
/// This is X-Stream's native input format: no ordering, no index. All
/// engine pre-processing (streaming partitioning) happens downstream of
/// this type and never sorts it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an edge list over `num_vertices` vertices.
    ///
    /// # Panics
    ///
    /// Panics if any edge references a vertex `>= num_vertices`.
    pub fn new(num_vertices: usize, edges: Vec<Edge>) -> Self {
        for e in &edges {
            assert!(
                (e.src as usize) < num_vertices && (e.dst as usize) < num_vertices,
                "edge ({}, {}) out of vertex range {num_vertices}",
                e.src,
                e.dst
            );
        }
        Self {
            num_vertices,
            edges,
        }
    }

    /// Creates an edge list without validating vertex ids (generators
    /// construct ids in range already).
    pub fn from_parts_unchecked(num_vertices: usize, edges: Vec<Edge>) -> Self {
        Self {
            num_vertices,
            edges,
        }
    }

    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn empty(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edges, in arbitrary order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Mutable access to the edges (used by the sorting baselines).
    #[inline]
    pub fn edges_mut(&mut self) -> &mut [Edge] {
        &mut self.edges
    }

    /// Consumes the list, returning the raw edges.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Appends an edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge references a vertex `>= num_vertices`.
    pub fn push(&mut self, e: Edge) {
        assert!(
            (e.src as usize) < self.num_vertices && (e.dst as usize) < self.num_vertices,
            "edge out of vertex range"
        );
        self.edges.push(e);
    }

    /// Returns the undirected expansion: every edge `(u, v)` becomes the
    /// pair `(u, v)` and `(v, u)` (paper §2: undirected graphs are
    /// represented by two directed edges). Self-loops are kept single.
    pub fn to_undirected(&self) -> EdgeList {
        let mut out = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            out.push(*e);
            if e.src != e.dst {
                out.push(e.reversed());
            }
        }
        EdgeList::from_parts_unchecked(self.num_vertices, out)
    }

    /// Returns a bidirectional stream for algorithms that traverse both
    /// directions of a *directed* graph (SCC): every edge appears twice,
    /// once forward with `weight = FORWARD` and once reversed with
    /// `weight = BACKWARD`. Existing weights are discarded.
    pub fn to_bidirectional(&self) -> EdgeList {
        let mut out = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            out.push(Edge::weighted(e.src, e.dst, direction::FORWARD));
            out.push(Edge::weighted(e.dst, e.src, direction::BACKWARD));
        }
        EdgeList::from_parts_unchecked(self.num_vertices, out)
    }

    /// Returns a copy with all edges reversed.
    pub fn reverse(&self) -> EdgeList {
        EdgeList::from_parts_unchecked(
            self.num_vertices,
            self.edges.iter().map(Edge::reversed).collect(),
        )
    }

    /// Assigns each edge a pseudo-random weight in `[0, 1)` (the paper
    /// does this for inputs without weights).
    pub fn with_random_weights<R: Rng>(mut self, rng: &mut R) -> EdgeList {
        for e in &mut self.edges {
            e.weight = rng.gen::<f32>();
        }
        self
    }

    /// A vertex suitable as a traversal root: the one with the highest
    /// out-degree. Graph500-style root sampling rejects isolated
    /// vertices, and scale-free generators routinely leave low vertex
    /// ids with no edges at all.
    pub fn max_out_degree_vertex(&self) -> VertexId {
        self.out_degrees()
            .iter()
            .enumerate()
            .max_by_key(|&(_, d)| *d)
            .map(|(v, _)| v as VertexId)
            .unwrap_or(0)
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_vertices];
        for e in &self.edges {
            d[e.src as usize] += 1;
        }
        d
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_vertices];
        for e in &self.edges {
            d[e.dst as usize] += 1;
        }
        d
    }

    /// Verifies that all edges reference valid vertices.
    pub fn validate(&self) -> xstream_core::Result<()> {
        for e in &self.edges {
            if (e.src as usize) >= self.num_vertices || (e.dst as usize) >= self.num_vertices {
                return Err(xstream_core::Error::InvalidInput(format!(
                    "edge ({}, {}) out of vertex range {}",
                    e.src, e.dst, self.num_vertices
                )));
            }
        }
        Ok(())
    }
}

/// Direction tags stored in the weight field of bidirectional streams
/// (see [`EdgeList::to_bidirectional`]).
pub mod direction {
    /// Weight value tagging a forward edge.
    pub const FORWARD: f32 = 0.0;
    /// Weight value tagging a backward (reversed) edge.
    pub const BACKWARD: f32 = 1.0;

    /// Whether a tag marks a forward edge.
    #[inline]
    pub fn is_forward(tag: f32) -> bool {
        tag == FORWARD
    }
}

/// Builds an `EdgeList` from `(src, dst)` pairs.
pub fn from_pairs(num_vertices: usize, pairs: &[(VertexId, VertexId)]) -> EdgeList {
    EdgeList::new(
        num_vertices,
        pairs.iter().map(|&(s, d)| Edge::new(s, d)).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_doubles_edges() {
        let g = from_pairs(4, &[(0, 1), (2, 3)]);
        let u = g.to_undirected();
        assert_eq!(u.num_edges(), 4);
        assert!(u.edges().contains(&Edge::new(1, 0)));
    }

    #[test]
    fn undirected_keeps_self_loops_single() {
        let g = from_pairs(2, &[(1, 1)]);
        assert_eq!(g.to_undirected().num_edges(), 1);
    }

    #[test]
    fn bidirectional_tags_directions() {
        let g = from_pairs(3, &[(0, 2)]);
        let b = g.to_bidirectional();
        assert_eq!(b.num_edges(), 2);
        assert!(direction::is_forward(b.edges()[0].weight));
        assert!(!direction::is_forward(b.edges()[1].weight));
        assert_eq!(b.edges()[1].src, 2);
    }

    #[test]
    fn degrees() {
        let g = from_pairs(3, &[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(g.out_degrees(), vec![2, 1, 0]);
        assert_eq!(g.in_degrees(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of vertex range")]
    fn rejects_out_of_range() {
        let _ = from_pairs(2, &[(0, 5)]);
    }

    #[test]
    fn validate_detects_bad_edges() {
        let g = EdgeList::from_parts_unchecked(2, vec![Edge::new(0, 9)]);
        assert!(g.validate().is_err());
    }

    #[test]
    fn random_weights_in_unit_interval() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = from_pairs(4, &[(0, 1), (1, 2), (2, 3)]).with_random_weights(&mut rng);
        for e in g.edges() {
            assert!((0.0..1.0).contains(&e.weight));
        }
    }
}
