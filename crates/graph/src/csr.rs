//! Compressed sparse row adjacency — the *sorted, indexed* edge
//! representation the paper's comparison systems are built on.
//!
//! X-Stream itself never builds this: the whole point of the paper is
//! that streaming the unordered edge list beats random access through
//! an index once the cost of producing the index (a sort) is accounted
//! for. The index-based baselines (local-queue BFS, hybrid BFS, the
//! Ligra-like engine) all start from a [`Csr`], and the pre-processing
//! timings in Figs. 18/20/22 time its construction.

use crate::edgelist::EdgeList;
use xstream_core::VertexId;

/// Compressed sparse row adjacency structure.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes the neighbours of `v`.
    offsets: Vec<usize>,
    /// Neighbour vertex ids, grouped by source.
    targets: Vec<VertexId>,
    /// Edge weights, parallel to `targets`.
    weights: Vec<f32>,
}

impl Csr {
    /// Builds the out-adjacency CSR of a graph using a counting sort by
    /// source (the cheapest index-construction strategy, used as the
    /// favourable pre-processing baseline).
    pub fn from_edge_list(g: &EdgeList) -> Self {
        let n = g.num_vertices();
        let mut counts = vec![0usize; n + 1];
        for e in g.edges() {
            counts[e.src as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; g.num_edges()];
        let mut weights = vec![0f32; g.num_edges()];
        for e in g.edges() {
            let slot = cursor[e.src as usize];
            cursor[e.src as usize] += 1;
            targets[slot] = e.dst;
            weights[slot] = e.weight;
        }
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Builds the *in*-adjacency (CSC) of a graph: neighbours grouped by
    /// destination. Direction-optimizing BFS and the Ligra-like pull
    /// phase need this reversed index; building it is the dominant
    /// pre-processing cost the paper reports for Ligra (Fig. 20).
    pub fn reversed_from_edge_list(g: &EdgeList) -> Self {
        Self::from_edge_list(&g.reverse())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbours of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Weights of the edges out of `v`, parallel to
    /// [`neighbors`](Self::neighbors).
    #[inline]
    pub fn weights(&self, v: VertexId) -> &[f32] {
        &self.weights[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edgelist::from_pairs;

    #[test]
    fn builds_adjacency() {
        let g = from_pairs(4, &[(0, 1), (0, 2), (2, 3), (1, 3)]);
        let csr = Csr::from_edge_list(&g);
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 4);
        let mut n0 = csr.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
        assert_eq!(csr.degree(3), 0);
    }

    #[test]
    fn reversed_adjacency() {
        let g = from_pairs(3, &[(0, 2), (1, 2)]);
        let csc = Csr::reversed_from_edge_list(&g);
        let mut n2 = csc.neighbors(2).to_vec();
        n2.sort_unstable();
        assert_eq!(n2, vec![0, 1]);
    }

    #[test]
    fn preserves_weights() {
        let g = EdgeList::new(2, vec![xstream_core::Edge::weighted(0, 1, 2.5)]);
        let csr = Csr::from_edge_list(&g);
        assert_eq!(csr.weights(0), &[2.5]);
    }

    #[test]
    fn empty_graph() {
        let g = EdgeList::empty(5);
        let csr = Csr::from_edge_list(&g);
        assert_eq!(csr.num_vertices(), 5);
        assert_eq!(csr.num_edges(), 0);
        assert!(csr.neighbors(4).is_empty());
    }
}
