//! Binary on-disk edge-list format (`.xse`).
//!
//! The out-of-core engine's input is "a file containing the unordered
//! edge list of the graph" (paper §3). The format here is a small
//! header followed by raw [`Edge`] records — readable in fixed-size
//! chunks so the pre-processing shuffle can stream it with large
//! sequential I/O and never hold the whole graph in memory.
//!
//! Reading is defensive: [`EdgeFileReader::open`] cross-checks the
//! header's declared counts against the actual file length *before*
//! anything is allocated, so a corrupt (or hostile) header can neither
//! trigger a multi-gigabyte `Vec::with_capacity` nor masquerade a
//! truncated payload as a smaller graph. Genuine I/O failures keep
//! their [`std::io::Error`] kind ([`Error::Io`]) — `ENOSPC`/`EIO`
//! stay distinguishable from truncation ([`Error::InvalidInput`]).
//!
//! Writing comes in two flavors: [`write_edge_file`] for in-memory
//! edge lists, and the streaming [`EdgeFileWriter`] used by
//! `xstream import` — it stamps a placeholder header, appends edge
//! chunks as they are parsed, and seeks back to finalize the counts,
//! so an import never holds more than one chunk of the input.
//!
//! Both writers additionally emit a `<file>.sum` checksum sidecar (the
//! same [`SumSidecar`] framing the stream store seals its streams
//! with: one CRC32 per [`EDGE_SUM_UNIT`] chunk), and the reader
//! verifies each chunk as it streams past when the sidecar is present
//! — a bit-rotted edge file is reported as [`Error::Corrupt`] at the
//! offending chunk instead of being shuffled into the store as
//! plausible garbage. A *missing* sidecar only disables verification
//! (edge files from other producers stay readable); a present but
//! undecodable or length-mismatched one is an error, because silently
//! ignoring a rotted sidecar would hollow out the integrity chain.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::edgelist::EdgeList;
use xstream_core::record::{records_as_bytes, RecordIter};
use xstream_core::{Edge, Error, Result, VertexId};
use xstream_storage::{crc32c, Crc32c, SumSidecar};

/// Magic bytes identifying an X-Stream edge file.
pub const MAGIC: &[u8; 8] = b"XSTREAM1";

/// Size of the file header in bytes.
pub const HEADER_LEN: usize = 8 + 8 + 8;

/// Chunk size the edge-file checksum sidecar covers. Small enough that
/// a detected corruption localizes usefully, large enough that the
/// sidecar stays ~0.006% of the file.
pub const EDGE_SUM_UNIT: usize = 64 * 1024;

/// Path of the checksum sidecar next to an edge file.
pub fn sum_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".sum");
    PathBuf::from(os)
}

/// Writes an edge list to `path` in the binary format, with its
/// checksum sidecar.
pub fn write_edge_file(path: &Path, g: &EdgeList) -> Result<()> {
    let mut w = EdgeFileWriter::create(path)?;
    w.append(g.edges())?;
    w.finish(Some(g.num_vertices()))?;
    Ok(())
}

/// Rolling sidecar computation for the streaming writer. The first
/// chunk's *bytes* are buffered (bounded by [`EDGE_SUM_UNIT`]) rather
/// than CRC'd on the fly, because [`EdgeFileWriter::finish`] seeks
/// back and rewrites the header inside it; every later chunk rolls
/// through a streaming CRC and is never held.
struct SidecarBuilder {
    unit: usize,
    first: Vec<u8>,
    rest: Vec<u32>,
    cur: Crc32c,
    cur_len: usize,
    total: u64,
}

impl SidecarBuilder {
    fn new(unit: usize) -> Self {
        Self {
            unit: unit.max(1),
            first: Vec::new(),
            rest: Vec::new(),
            cur: Crc32c::new(),
            cur_len: 0,
            total: 0,
        }
    }

    fn feed(&mut self, mut bytes: &[u8]) {
        self.total += bytes.len() as u64;
        if self.first.len() < self.unit {
            let take = (self.unit - self.first.len()).min(bytes.len());
            self.first.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
        }
        while !bytes.is_empty() {
            let take = (self.unit - self.cur_len).min(bytes.len());
            self.cur.update(&bytes[..take]);
            self.cur_len += take;
            if self.cur_len == self.unit {
                self.rest.push(self.cur.value());
                self.cur.reset();
                self.cur_len = 0;
            }
            bytes = &bytes[take..];
        }
    }

    /// Finalizes after the caller patched [`Self::first`] in place.
    fn finish(self) -> SumSidecar {
        let mut crcs = Vec::with_capacity(1 + self.rest.len() + 1);
        if !self.first.is_empty() {
            crcs.push(crc32c(&self.first));
        }
        crcs.extend(self.rest);
        if self.cur_len > 0 {
            crcs.push(self.cur.value());
        }
        SumSidecar {
            unit: self.unit as u64,
            total_len: self.total,
            crcs,
        }
    }
}

/// Rolling chunk verification against a sidecar, fed every byte the
/// reader consumes in order (header included).
struct SidecarVerify {
    sidecar: SumSidecar,
    cur: Crc32c,
    cur_len: u64,
    chunk: u64,
    name: String,
}

impl SidecarVerify {
    fn feed(&mut self, mut bytes: &[u8]) -> Result<()> {
        while !bytes.is_empty() {
            let take = ((self.sidecar.unit - self.cur_len) as usize).min(bytes.len());
            self.cur.update(&bytes[..take]);
            self.cur_len += take as u64;
            if self.cur_len == self.sidecar.unit {
                self.check()?;
            }
            bytes = &bytes[take..];
        }
        Ok(())
    }

    /// Compares the completed (or, at EOF, trailing partial) chunk.
    fn check(&mut self) -> Result<()> {
        let expect = self.sidecar.crcs.get(self.chunk as usize).copied();
        if expect != Some(self.cur.value()) {
            return Err(Error::Corrupt {
                stream: self.name.clone(),
                chunk: self.chunk,
            });
        }
        self.cur.reset();
        self.cur_len = 0;
        self.chunk += 1;
        Ok(())
    }

    fn finish(&mut self) -> Result<()> {
        if self.cur_len > 0 {
            self.check()?;
        }
        Ok(())
    }
}

/// Reads a whole edge file into memory.
///
/// The header was validated against the file length by
/// [`EdgeFileReader::open`], so the up-front allocation is bounded by
/// the actual file size.
pub fn read_edge_file(path: &Path) -> Result<EdgeList> {
    let mut reader = EdgeFileReader::open(path)?;
    let mut edges = Vec::with_capacity(reader.num_edges());
    let mut chunk = Vec::new();
    while reader.read_chunk_into(1 << 20, &mut chunk)? {
        edges.extend_from_slice(&chunk);
    }
    Ok(EdgeList::from_parts_unchecked(reader.num_vertices(), edges))
}

/// Chunked sequential reader over an edge file.
pub struct EdgeFileReader {
    reader: BufReader<File>,
    num_vertices: usize,
    num_edges: usize,
    read_edges: usize,
    /// Pooled staging buffer: refilling a chunk through
    /// [`Self::read_chunk_into`] reuses it, so steady-state reads
    /// allocate nothing.
    bytes: Vec<u8>,
    /// Rolling checksum verification, when a `.sum` sidecar was found
    /// next to the file.
    verify: Option<SidecarVerify>,
}

impl EdgeFileReader {
    /// Opens an edge file, parses its header and validates the
    /// declared counts against the actual file length. A header that
    /// promises more edges than the file holds — or fewer — is
    /// rejected here, before any record is read or any buffer sized
    /// from it is allocated.
    pub fn open(path: &Path) -> Result<Self> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut reader = BufReader::new(file);
        let mut header = [0u8; HEADER_LEN];
        reader.read_exact(&mut header).map_err(|_| {
            Error::InvalidInput(format!("{}: too short for an edge file", path.display()))
        })?;
        if &header[..8] != MAGIC {
            return Err(Error::InvalidInput(format!(
                "{}: bad magic, not an X-Stream edge file",
                path.display()
            )));
        }
        let num_vertices = u64::from_le_bytes(header[8..16].try_into().unwrap());
        let num_edges = u64::from_le_bytes(header[16..24].try_into().unwrap());
        if num_vertices > VertexId::MAX as u64 {
            return Err(Error::InvalidInput(format!(
                "{}: header declares {num_vertices} vertices, beyond the 32-bit id space",
                path.display()
            )));
        }
        let expected = num_edges
            .checked_mul(Edge::SIZE as u64)
            .and_then(|b| b.checked_add(HEADER_LEN as u64));
        if expected != Some(file_len) {
            return Err(Error::InvalidInput(format!(
                "{}: truncated or corrupt: header promises {num_edges} edges \
                 ({} bytes), file holds {file_len} bytes",
                path.display(),
                expected.map_or_else(|| "overflowing".to_string(), |b| b.to_string()),
            )));
        }
        // A sidecar next to the file turns on rolling verification; its
        // absence is fine (other producers), but a present-and-broken
        // one is rot in the integrity chain, not a reason to skip it.
        let verify = match std::fs::read(sum_path(path)) {
            Err(_) => None,
            Ok(raw) => {
                let sidecar = SumSidecar::decode(&raw).ok_or_else(|| {
                    Error::InvalidInput(format!(
                        "{}: checksum sidecar is malformed; refusing to read unverified \
                         (delete the .sum file to skip verification)",
                        sum_path(path).display()
                    ))
                })?;
                if sidecar.total_len != file_len {
                    return Err(Error::InvalidInput(format!(
                        "{}: checksum sidecar describes {} bytes but the file holds {file_len}; \
                         the file was modified after sealing",
                        sum_path(path).display(),
                        sidecar.total_len
                    )));
                }
                let mut v = SidecarVerify {
                    sidecar,
                    cur: Crc32c::new(),
                    cur_len: 0,
                    chunk: 0,
                    name: path.display().to_string(),
                };
                v.feed(&header)?;
                Some(v)
            }
        };
        let mut this = Self {
            reader,
            num_vertices: num_vertices as usize,
            num_edges: num_edges as usize,
            read_edges: 0,
            bytes: Vec::new(),
            verify,
        };
        // An edge-free file is fully read at open; settle the tail so
        // a rotted header cannot hide behind "no chunk ever completed".
        if this.num_edges == 0 {
            if let Some(v) = &mut this.verify {
                v.finish()?;
            }
        }
        Ok(this)
    }

    /// Declared vertex count.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Declared edge count.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Refills `out` with the next chunk of at most `max_edges` edges,
    /// reusing its capacity (and the reader's pooled byte buffer), so
    /// a streaming pass over the file performs no steady-state
    /// allocation. Returns `false` at end of file.
    ///
    /// An unexpected end of file (the file shrank after
    /// [`open`](Self::open) validated it) reports
    /// [`Error::InvalidInput`]; every other read failure keeps its
    /// [`std::io::Error`] kind in [`Error::Io`], so `EIO`/`ENOSPC`
    /// remain distinguishable from truncation.
    pub fn read_chunk_into(&mut self, max_edges: usize, out: &mut Vec<Edge>) -> Result<bool> {
        out.clear();
        let remaining = self.num_edges - self.read_edges;
        if remaining == 0 {
            return Ok(false);
        }
        let want = remaining.min(max_edges.max(1));
        // resize (no clear) zero-fills only growth: steady-state
        // chunks are same-sized, so no memset precedes the read.
        self.bytes.resize(want * Edge::SIZE, 0);
        self.reader.read_exact(&mut self.bytes).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                Error::InvalidInput("edge file truncated mid-record".to_string())
            } else {
                Error::Io(e)
            }
        })?;
        self.read_edges += want;
        if let Some(v) = &mut self.verify {
            v.feed(&self.bytes)?;
            if self.read_edges == self.num_edges {
                v.finish()?;
            }
        }
        out.reserve(want);
        out.extend(RecordIter::<Edge>::new(&self.bytes));
        Ok(true)
    }

    /// Reads the next chunk of at most `max_edges` edges into a fresh
    /// vector; `None` at EOF. Prefer [`Self::read_chunk_into`] on
    /// streaming paths — this variant allocates per chunk.
    pub fn next_chunk(&mut self, max_edges: usize) -> Result<Option<Vec<Edge>>> {
        let mut out = Vec::new();
        Ok(if self.read_chunk_into(max_edges, &mut out)? {
            Some(out)
        } else {
            None
        })
    }
}

/// Streaming writer producing the binary edge format without holding
/// the edge list in memory: create, append parsed chunks, finish.
///
/// The header is stamped with placeholder counts at creation and
/// rewritten by [`finish`](Self::finish) once the totals are known —
/// the shape `xstream import` needs, where the vertex count is
/// discovered while streaming the source.
pub struct EdgeFileWriter {
    writer: BufWriter<File>,
    num_edges: usize,
    /// Highest vertex id seen across every appended edge (`None` until
    /// the first edge arrives).
    max_vertex: Option<VertexId>,
    /// Rolling sidecar computation over everything written; the header
    /// region is patched at [`finish`](Self::finish).
    sums: SidecarBuilder,
    /// Where the sidecar lands at finish.
    sum_path: PathBuf,
}

impl EdgeFileWriter {
    /// Creates `path` and stamps a placeholder header.
    pub fn create(path: &Path) -> Result<Self> {
        let mut writer = BufWriter::new(File::create(path)?);
        writer.write_all(MAGIC)?;
        writer.write_all(&[0u8; HEADER_LEN - MAGIC.len()])?;
        let mut sums = SidecarBuilder::new(EDGE_SUM_UNIT);
        sums.feed(MAGIC);
        sums.feed(&[0u8; HEADER_LEN - MAGIC.len()]);
        // A stale sidecar from a previous file at this path must not
        // outlive it; it is rewritten from the fresh sums at finish.
        let sum_path = sum_path(path);
        let _ = std::fs::remove_file(&sum_path);
        Ok(Self {
            writer,
            num_edges: 0,
            max_vertex: None,
            sums,
            sum_path,
        })
    }

    /// Appends a chunk of edges, tracking the highest vertex id for
    /// automatic vertex-count discovery.
    pub fn append(&mut self, edges: &[Edge]) -> Result<()> {
        for e in edges {
            let hi = e.src.max(e.dst);
            self.max_vertex = Some(self.max_vertex.map_or(hi, |m| m.max(hi)));
        }
        self.num_edges += edges.len();
        let bytes = records_as_bytes(edges);
        self.writer.write_all(bytes)?;
        self.sums.feed(bytes);
        Ok(())
    }

    /// Edges appended so far.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The vertex count the appended edges imply (`max id + 1`).
    #[inline]
    pub fn discovered_vertices(&self) -> usize {
        self.max_vertex.map_or(0, |m| m as usize + 1)
    }

    /// Finalizes the header and returns `(num_vertices, num_edges)`.
    ///
    /// `num_vertices` of `None` uses the discovered `max id + 1`; an
    /// explicit count smaller than that is an
    /// [`Error::InvalidInput`] — the file would reference vertices
    /// outside its own declared range.
    pub fn finish(mut self, num_vertices: Option<usize>) -> Result<(usize, usize)> {
        let discovered = self.discovered_vertices();
        let n = num_vertices.unwrap_or(discovered);
        if n < discovered {
            return Err(Error::InvalidInput(format!(
                "declared vertex count {n} is below the highest referenced id \
                 (needs at least {discovered})"
            )));
        }
        if n > VertexId::MAX as usize {
            return Err(Error::InvalidInput(format!(
                "vertex count {n} exceeds the 32-bit id space"
            )));
        }
        self.writer.flush()?;
        let file = self.writer.get_mut();
        file.seek(SeekFrom::Start(MAGIC.len() as u64))?;
        file.write_all(&(n as u64).to_le_bytes())?;
        file.write_all(&(self.num_edges as u64).to_le_bytes())?;
        file.sync_data()?;
        // Mirror the header rewrite into the buffered first chunk, then
        // seal the sidecar (temp + rename, like the store does).
        self.sums.first[8..16].copy_from_slice(&(n as u64).to_le_bytes());
        self.sums.first[16..24].copy_from_slice(&(self.num_edges as u64).to_le_bytes());
        let sidecar = self.sums.finish();
        let tmp = self.sum_path.with_extension("sum.tmp");
        std::fs::write(&tmp, sidecar.encode())?;
        std::fs::rename(&tmp, &self.sum_path)?;
        Ok((n, self.num_edges))
    }
}

use xstream_core::Record;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = erdos_renyi(100, 1000, 2);
        write_edge_file(&path, &g).unwrap();
        let back = read_edge_file(&path).unwrap();
        assert_eq!(back, g);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunked_reading_matches() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_chunk");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = erdos_renyi(64, 777, 3);
        write_edge_file(&path, &g).unwrap();
        let mut reader = EdgeFileReader::open(&path).unwrap();
        let mut edges = Vec::new();
        while let Some(chunk) = reader.next_chunk(100).unwrap() {
            assert!(chunk.len() <= 100);
            edges.extend_from_slice(&chunk);
        }
        assert_eq!(edges, g.edges());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_writer_roundtrip() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_writer");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = erdos_renyi(50, 400, 9);
        let mut w = EdgeFileWriter::create(&path).unwrap();
        for chunk in g.edges().chunks(37) {
            w.append(chunk).unwrap();
        }
        // Explicit vertex count (the generator may leave trailing
        // isolated vertices the discovered max id cannot see).
        let (v, e) = w.finish(Some(g.num_vertices())).unwrap();
        assert_eq!((v, e), (g.num_vertices(), g.num_edges()));
        assert_eq!(read_edge_file(&path).unwrap(), g);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn writer_discovers_vertex_count_and_rejects_undercounts() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_disc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let mut w = EdgeFileWriter::create(&path).unwrap();
        w.append(&[Edge::new(3, 17), Edge::new(0, 4)]).unwrap();
        assert_eq!(w.discovered_vertices(), 18);
        let (v, e) = w.finish(None).unwrap();
        assert_eq!((v, e), (18, 2));

        let mut w = EdgeFileWriter::create(&path).unwrap();
        w.append(&[Edge::new(3, 17)]).unwrap();
        assert!(matches!(w.finish(Some(10)), Err(Error::InvalidInput(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_magic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bogus.xse");
        std::fs::write(&path, b"NOTMAGICxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(EdgeFileReader::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detects_truncation() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = erdos_renyi(10, 50, 4);
        write_edge_file(&path, &g).unwrap();
        // Chop off the last 7 bytes: the length check at open rejects
        // the file before a single record is read.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        match read_edge_file(&path) {
            Err(Error::InvalidInput(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected InvalidInput, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn hostile_header_rejected_before_allocation() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_hostile");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evil.xse");
        // A header promising u64::MAX edges over 8 bytes of payload:
        // open() must reject it from the length mismatch (and the
        // byte-count overflow) — never size an allocation from it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&100u64.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 8]);
        std::fs::write(&path, &bytes).unwrap();
        match EdgeFileReader::open(&path) {
            Err(Error::InvalidInput(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected InvalidInput, got {:?}", other.map(|_| ())),
        }
        // Same for a merely-large lie that doesn't overflow.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&100u64.to_le_bytes());
        bytes.extend_from_slice(&(1u64 << 40).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 24]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            EdgeFileReader::open(&path),
            Err(Error::InvalidInput(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn vertex_count_beyond_id_space_rejected() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_vspace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("big.xse");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&(u64::from(u32::MAX) + 2).to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match EdgeFileReader::open(&path) {
            Err(Error::InvalidInput(msg)) => assert!(msg.contains("id space"), "{msg}"),
            other => panic!("expected InvalidInput, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn rot_byte(path: &Path, at: u64) {
        let mut bytes = std::fs::read(path).unwrap();
        bytes[at as usize] ^= 0x01;
        std::fs::write(path, bytes).unwrap();
    }

    #[test]
    fn writers_emit_sidecars_and_rot_is_detected() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_sums");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        // ~1.2 MB so the sidecar spans many chunks and the streaming
        // writer's chunk-0 header fixup is exercised alongside rolled
        // later chunks.
        let g = erdos_renyi(500, 100_000, 11);
        let mut w = EdgeFileWriter::create(&path).unwrap();
        for chunk in g.edges().chunks(9973) {
            w.append(chunk).unwrap();
        }
        w.finish(Some(g.num_vertices())).unwrap();
        assert!(sum_path(&path).exists());
        assert_eq!(read_edge_file(&path).unwrap(), g);

        // Rot one payload byte mid-file: the read fails at the exact
        // chunk, classified as corruption (not transient I/O).
        let at = HEADER_LEN as u64 + (EDGE_SUM_UNIT as u64 * 3) + 17;
        rot_byte(&path, at);
        match read_edge_file(&path) {
            Err(Error::Corrupt { chunk, .. }) => assert_eq!(chunk, 3),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
        rot_byte(&path, at); // heal

        // Rot a byte inside the header (past the magic): chunk 0.
        rot_byte(&path, 9);
        assert!(matches!(
            read_edge_file(&path),
            Err(Error::Corrupt { chunk: 0, .. }) | Err(Error::InvalidInput(_))
        ));
        rot_byte(&path, 9);

        // A missing sidecar only disables verification...
        std::fs::remove_file(sum_path(&path)).unwrap();
        assert_eq!(read_edge_file(&path).unwrap(), g);
        // ...but a rotted one is an error, never silently skipped.
        write_edge_file(&path, &g).unwrap();
        rot_byte(&sum_path(&path), 25);
        assert!(read_edge_file(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_sidecar_after_rewrite_is_rejected() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_stale");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = erdos_renyi(40, 300, 5);
        write_edge_file(&path, &g).unwrap();
        let sidecar = std::fs::read(sum_path(&path)).unwrap();
        // Rewrite the file to a different size but restore the old
        // sidecar: the length mismatch is caught at open.
        let g2 = erdos_renyi(40, 200, 6);
        write_edge_file(&path, &g2).unwrap();
        std::fs::write(sum_path(&path), &sidecar).unwrap();
        match EdgeFileReader::open(&path) {
            Err(Error::InvalidInput(msg)) => assert!(msg.contains("modified after"), "{msg}"),
            other => panic!("expected InvalidInput, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn steady_state_chunk_reads_reuse_buffers() {
        // Deterministic reuse check (the process-wide alloc counters
        // belong to single-test binaries like `tests/out_of_core.rs`,
        // which asserts the end-to-end ingest allocation bound): after
        // the first chunk warms the buffers, neither the caller's
        // chunk vector nor its backing allocation may move or grow.
        let dir = std::env::temp_dir().join("xstream_fileio_test_alloc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = erdos_renyi(200, 20_000, 6);
        write_edge_file(&path, &g).unwrap();
        let mut reader = EdgeFileReader::open(&path).unwrap();
        let mut chunk = Vec::new();
        assert!(reader.read_chunk_into(512, &mut chunk).unwrap());
        let (ptr, cap) = (chunk.as_ptr(), chunk.capacity());
        let mut total = chunk.len();
        while reader.read_chunk_into(512, &mut chunk).unwrap() {
            total += chunk.len();
            assert_eq!(chunk.as_ptr(), ptr, "chunk buffer was reallocated");
            assert_eq!(chunk.capacity(), cap, "chunk buffer grew");
        }
        assert_eq!(total, g.num_edges());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
