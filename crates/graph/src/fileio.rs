//! Binary on-disk edge-list format.
//!
//! The out-of-core engine's input is "a file containing the unordered
//! edge list of the graph" (paper §3). The format here is a small
//! header followed by raw [`Edge`] records — readable in fixed-size
//! chunks so the pre-processing shuffle can stream it with large
//! sequential I/O and never hold the whole graph in memory.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::edgelist::EdgeList;
use xstream_core::record::{decode_records, records_as_bytes};
use xstream_core::{Edge, Error, Result};

/// Magic bytes identifying an X-Stream edge file.
pub const MAGIC: &[u8; 8] = b"XSTREAM1";

/// Size of the file header in bytes.
pub const HEADER_LEN: usize = 8 + 8 + 8;

/// Writes an edge list to `path` in the binary format.
pub fn write_edge_file(path: &Path, g: &EdgeList) -> Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    w.write_all(records_as_bytes(g.edges()))?;
    w.flush()?;
    Ok(())
}

/// Reads a whole edge file into memory.
pub fn read_edge_file(path: &Path) -> Result<EdgeList> {
    let mut reader = EdgeFileReader::open(path)?;
    let mut edges = Vec::with_capacity(reader.num_edges());
    while let Some(chunk) = reader.next_chunk(1 << 20)? {
        edges.extend_from_slice(&chunk);
    }
    if edges.len() != reader.num_edges() {
        return Err(Error::InvalidInput(format!(
            "edge file truncated: header promises {} edges, found {}",
            reader.num_edges(),
            edges.len()
        )));
    }
    Ok(EdgeList::from_parts_unchecked(reader.num_vertices(), edges))
}

/// Chunked sequential reader over an edge file.
pub struct EdgeFileReader {
    reader: BufReader<File>,
    num_vertices: usize,
    num_edges: usize,
    read_edges: usize,
}

impl EdgeFileReader {
    /// Opens an edge file and parses its header.
    pub fn open(path: &Path) -> Result<Self> {
        let mut reader = BufReader::new(File::open(path)?);
        let mut header = [0u8; HEADER_LEN];
        reader.read_exact(&mut header).map_err(|_| {
            Error::InvalidInput(format!("{}: too short for an edge file", path.display()))
        })?;
        if &header[..8] != MAGIC {
            return Err(Error::InvalidInput(format!(
                "{}: bad magic, not an X-Stream edge file",
                path.display()
            )));
        }
        let num_vertices = u64::from_le_bytes(header[8..16].try_into().unwrap()) as usize;
        let num_edges = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
        Ok(Self {
            reader,
            num_vertices,
            num_edges,
            read_edges: 0,
        })
    }

    /// Declared vertex count.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Declared edge count.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Reads the next chunk of at most `max_edges` edges; `None` at EOF.
    pub fn next_chunk(&mut self, max_edges: usize) -> Result<Option<Vec<Edge>>> {
        let remaining = self.num_edges - self.read_edges;
        if remaining == 0 {
            return Ok(None);
        }
        let want = remaining.min(max_edges.max(1));
        let mut buf = vec![0u8; want * Edge::SIZE];
        self.reader
            .read_exact(&mut buf)
            .map_err(|_| Error::InvalidInput("edge file truncated mid-record".to_string()))?;
        self.read_edges += want;
        Ok(Some(decode_records::<Edge>(&buf)))
    }
}

use xstream_core::Record;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::erdos_renyi;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = erdos_renyi(100, 1000, 2);
        write_edge_file(&path, &g).unwrap();
        let back = read_edge_file(&path).unwrap();
        assert_eq!(back, g);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunked_reading_matches() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_chunk");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = erdos_renyi(64, 777, 3);
        write_edge_file(&path, &g).unwrap();
        let mut reader = EdgeFileReader::open(&path).unwrap();
        let mut edges = Vec::new();
        while let Some(chunk) = reader.next_chunk(100).unwrap() {
            assert!(chunk.len() <= 100);
            edges.extend_from_slice(&chunk);
        }
        assert_eq!(edges, g.edges());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_magic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bogus.xse");
        std::fs::write(&path, b"NOTMAGICxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(EdgeFileReader::open(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detects_truncation() {
        let dir = std::env::temp_dir().join("xstream_fileio_test_trunc");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = erdos_renyi(10, 50, 4);
        write_edge_file(&path, &g).unwrap();
        // Chop off the last 7 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        assert!(read_edge_file(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
