//! Streamed graph derivations over on-disk edge files.
//!
//! The in-memory [`EdgeList`](crate::EdgeList) transforms
//! (`to_undirected`, `to_bidirectional`, `out_degrees`) double or scan
//! the whole edge list in RAM — fine for the in-memory engine, fatal
//! for the out-of-core path, whose entire point (paper §3) is that the
//! graph is never materialized. This module provides the streaming
//! equivalents the CLI's disk path uses:
//!
//! * [`MirrorMode`] — chunk-level edge mirroring applied *during* the
//!   pre-processing shuffle (the out-of-core engine mirrors each
//!   loaded chunk before routing it to partition files), so an
//!   undirected or bidirectional expansion costs one pass and O(chunk)
//!   memory instead of a doubled in-RAM edge list;
//! * [`streamed_out_degrees`] — the one-pass degree scan PageRank and
//!   SpMV need, reading the file chunk-by-chunk into a preallocated
//!   `Vec<u32>` (vertex-indexed state is the one thing §3.1 budgets to
//!   fit in memory);
//! * [`streamed_info`] — the `xstream info` statistics in one pass.

use std::path::Path;

use crate::edgelist::direction;
use crate::fileio::EdgeFileReader;
use xstream_core::{Edge, Error, Result};

/// Edges decoded per chunk by the streaming scans in this module
/// (~768 KiB of staging at [`Edge::SIZE`] = 12).
const SCAN_CHUNK_EDGES: usize = 1 << 16;

/// On-the-fly edge mirroring applied to each streamed chunk before
/// partition routing — the streaming replacement for
/// [`EdgeList::to_undirected`](crate::EdgeList::to_undirected) and
/// [`EdgeList::to_bidirectional`](crate::EdgeList::to_bidirectional).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MirrorMode {
    /// Stream the edges exactly as stored.
    #[default]
    None,
    /// Undirected expansion: every edge `(u, v)` is followed by
    /// `(v, u)`; self-loops stay single (paper §2: undirected graphs
    /// are two directed edges).
    Undirected,
    /// Bidirectional expansion for direction-aware traversals (SCC):
    /// every edge appears forward with `weight = FORWARD` and reversed
    /// with `weight = BACKWARD`; existing weights are discarded.
    Bidirectional,
}

impl MirrorMode {
    /// Expands `chunk` in place according to the mode. Mirrored edges
    /// are appended after the originals — the engines shuffle by
    /// source partition immediately afterwards, so intra-chunk order
    /// is immaterial.
    pub fn mirror_in_place(self, chunk: &mut Vec<Edge>) {
        let n = chunk.len();
        match self {
            MirrorMode::None => {}
            MirrorMode::Undirected => {
                chunk.reserve(n);
                for i in 0..n {
                    let e = chunk[i];
                    if e.src != e.dst {
                        chunk.push(e.reversed());
                    }
                }
            }
            MirrorMode::Bidirectional => {
                chunk.reserve(n);
                for i in 0..n {
                    let e = chunk[i];
                    chunk[i] = Edge::weighted(e.src, e.dst, direction::FORWARD);
                    chunk.push(Edge::weighted(e.dst, e.src, direction::BACKWARD));
                }
            }
        }
    }

    /// Upper bound on the expansion factor (sizes pre-reserved chunk
    /// buffers so steady-state mirroring never reallocates).
    pub fn max_expansion(self) -> usize {
        match self {
            MirrorMode::None => 1,
            MirrorMode::Undirected | MirrorMode::Bidirectional => 2,
        }
    }
}

/// Checks both endpoints of `e` against the declared vertex range —
/// the one guard every streaming consumer of an edge file shares
/// (degree scans, `streamed_info`, the disk engine's ingest), so a
/// corrupt file is a reported error everywhere, never a panic.
#[inline]
pub fn validate_edge(e: &Edge, num_vertices: usize) -> Result<()> {
    if (e.src as usize) < num_vertices && (e.dst as usize) < num_vertices {
        Ok(())
    } else {
        Err(Error::InvalidInput(format!(
            "edge ({}, {}) references a vertex outside the declared range {num_vertices}",
            e.src, e.dst
        )))
    }
}

/// Out-degree of every vertex, computed in one streaming pass over the
/// edge file: O(V) memory for the counts plus one reused chunk buffer,
/// never the edge list.
pub fn streamed_out_degrees(path: &Path) -> Result<Vec<u32>> {
    let mut reader = EdgeFileReader::open(path)?;
    let n = reader.num_vertices();
    let mut degrees = vec![0u32; n];
    let mut chunk = Vec::new();
    while reader.read_chunk_into(SCAN_CHUNK_EDGES, &mut chunk)? {
        for e in &chunk {
            validate_edge(e, n)?;
            degrees[e.src as usize] += 1;
        }
    }
    Ok(degrees)
}

/// One-pass degree statistics of an edge file (the `xstream info`
/// report), holding two vertex-indexed count arrays and one chunk
/// buffer — never the edge list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphInfo {
    /// Declared vertex count.
    pub num_vertices: usize,
    /// Declared edge count.
    pub num_edges: usize,
    /// Largest out-degree.
    pub max_out_degree: u32,
    /// Vertices with neither in- nor out-edges.
    pub isolated: usize,
    /// Edges with `src == dst`.
    pub self_loops: usize,
}

/// Streams `path` once and returns its [`GraphInfo`].
pub fn streamed_info(path: &Path) -> Result<GraphInfo> {
    let mut reader = EdgeFileReader::open(path)?;
    let n = reader.num_vertices();
    let num_edges = reader.num_edges();
    let mut out_deg = vec![0u32; n];
    let mut in_deg = vec![0u32; n];
    let mut self_loops = 0usize;
    let mut chunk = Vec::new();
    while reader.read_chunk_into(SCAN_CHUNK_EDGES, &mut chunk)? {
        for e in &chunk {
            validate_edge(e, n)?;
            let (s, d) = (e.src as usize, e.dst as usize);
            out_deg[s] += 1;
            in_deg[d] += 1;
            if s == d {
                self_loops += 1;
            }
        }
    }
    let max_out_degree = out_deg.iter().copied().max().unwrap_or(0);
    let isolated = (0..n)
        .filter(|&v| out_deg[v] == 0 && in_deg[v] == 0)
        .count();
    Ok(GraphInfo {
        num_vertices: n,
        num_edges,
        max_out_degree,
        isolated,
        self_loops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fileio::write_edge_file;
    use crate::generators;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("xstream_transform_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mirroring_chunks_matches_whole_graph_transforms() {
        let g = generators::preferential_attachment(120, 4, 3);
        // Add a self-loop to exercise the single-copy rule.
        let mut edges = g.edges().to_vec();
        edges.push(Edge::new(5, 5));
        let g = crate::EdgeList::from_parts_unchecked(g.num_vertices(), edges);

        for (mode, reference) in [
            (MirrorMode::Undirected, g.to_undirected()),
            (MirrorMode::Bidirectional, g.to_bidirectional()),
        ] {
            let mut streamed: Vec<Edge> = Vec::new();
            for c in g.edges().chunks(7) {
                let mut chunk = c.to_vec();
                mode.mirror_in_place(&mut chunk);
                streamed.extend_from_slice(&chunk);
            }
            // Same multiset of edges (order differs: mirrored copies
            // are appended per chunk instead of interleaved).
            let key = |e: &Edge| (e.src, e.dst, e.weight.to_bits());
            let mut a: Vec<_> = streamed.iter().map(key).collect();
            let mut b: Vec<_> = reference.edges().iter().map(key).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{mode:?}");
        }
        assert_eq!(MirrorMode::None.max_expansion(), 1);
        assert_eq!(MirrorMode::Undirected.max_expansion(), 2);
    }

    #[test]
    fn streamed_out_degrees_match_in_memory() {
        let g = generators::erdos_renyi(300, 2500, 17);
        let path = tmp("deg.xse");
        write_edge_file(&path, &g).unwrap();
        assert_eq!(streamed_out_degrees(&path).unwrap(), g.out_degrees());
    }

    #[test]
    fn streamed_info_matches_in_memory() {
        let g = generators::webgraph(200, 8, 16, 5);
        let path = tmp("info.xse");
        write_edge_file(&path, &g).unwrap();
        let info = streamed_info(&path).unwrap();
        let out = g.out_degrees();
        let in_ = g.in_degrees();
        assert_eq!(info.num_vertices, g.num_vertices());
        assert_eq!(info.num_edges, g.num_edges());
        assert_eq!(info.max_out_degree, out.iter().copied().max().unwrap_or(0));
        assert_eq!(
            info.isolated,
            (0..g.num_vertices())
                .filter(|&v| out[v] == 0 && in_[v] == 0)
                .count()
        );
        assert_eq!(
            info.self_loops,
            g.edges().iter().filter(|e| e.src == e.dst).count()
        );
    }

    #[test]
    fn out_of_range_edge_is_reported_not_panicked() {
        let path = tmp("oob.xse");
        // Handcraft a file whose header under-declares the vertices
        // (raw bytes — the writers now refuse to produce this).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(crate::fileio::MAGIC);
        bytes.extend_from_slice(&3u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(xstream_core::record::records_as_bytes(&[Edge::new(9, 0)]));
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            streamed_out_degrees(&path),
            Err(Error::InvalidInput(_))
        ));
        assert!(matches!(streamed_info(&path), Err(Error::InvalidInput(_))));
    }
}
