//! Checksummed checkpoint frames for out-of-core supersteps.
//!
//! After gather completes, the vertex state is the *only* thing a
//! superstep leaves behind that the next superstep cannot reconstruct:
//! edge files are immutable after ingest and update files are consumed
//! by the gather that produced the state. Persisting the vertex array
//! (plus the superstep index it corresponds to) therefore makes a
//! killed run resumable with no re-execution of completed supersteps.
//!
//! A checkpoint is a single self-validating frame:
//!
//! ```text
//! magic "XSCP" | version u32 | fingerprint u64 | superstep u64 |
//! count u64 | aux_len u64 | payload (count * size_of::<S>() bytes) |
//! aux (aux_len bytes) | crc32 u32
//! ```
//!
//! All integers are little-endian. The trailing CRC-32 covers every
//! preceding byte, so a torn or bit-rotted frame is rejected as a unit
//! — there is no partial restore. The `fingerprint` binds the frame to
//! a specific (graph shape, program, state layout) combination so a
//! checkpoint can never be restored into a run it does not describe.
//! The `aux` section carries engine-side extras that are not vertex
//! state — today the active-vertex frontier bitmap of frontier-tracked
//! programs, so a resume mid-traversal restores the exact active set
//! instead of rescanning states (it is empty for dense programs).
//!
//! The engine writes frames with
//! [`StreamStore::write_atomic`](xstream_storage::StreamStore::write_atomic)
//! (write-temp-then-rename) into two alternating slots
//! (`checkpoint.0`/`checkpoint.1`), so the previous checkpoint survives
//! a crash *during* checkpointing; resume validates both slots and
//! picks the newest valid one. This module holds the pure frame codec;
//! the engine-side orchestration lives in [`crate::engine`].

use xstream_core::record::{decode_records, records_as_bytes, Record};
use xstream_storage::crc32;

/// Frame magic: "XSCP" (X-Stream CheckPoint).
pub const MAGIC: [u8; 4] = *b"XSCP";

/// Current frame version. Bumped on any layout change; old frames are
/// rejected (treated as invalid) rather than migrated. Version 2 added
/// the `aux` section (frontier bitmaps).
pub const VERSION: u32 = 2;

/// Fixed header length in bytes (magic + version + fingerprint +
/// superstep + count + aux_len).
const HEADER: usize = 4 + 4 + 8 + 8 + 8 + 8;

/// Trailing CRC length in bytes.
const TRAILER: usize = 4;

/// FNV-1a over a sequence of length-delimited byte strings. Used to
/// fingerprint the (graph, program, state layout) combination a
/// checkpoint belongs to — not cryptographic, just a mismatch detector.
pub fn fingerprint(parts: &[&[u8]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let mut byte = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    };
    for part in parts {
        // Length-delimit each part so ("ab","c") != ("a","bc").
        for b in (part.len() as u64).to_le_bytes() {
            byte(b);
        }
        for &b in *part {
            byte(b);
        }
    }
    h
}

/// Encodes one checkpoint frame for `states` at `superstep`, with an
/// opaque `aux` section (e.g. the frontier bitmap; empty when the
/// program has none).
pub fn encode_frame<S: Record>(
    fingerprint: u64,
    superstep: u64,
    states: &[S],
    aux: &[u8],
) -> Vec<u8> {
    let payload = records_as_bytes(states);
    let mut out = Vec::with_capacity(HEADER + payload.len() + aux.len() + TRAILER);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&superstep.to_le_bytes());
    out.extend_from_slice(&(states.len() as u64).to_le_bytes());
    out.extend_from_slice(&(aux.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(aux);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Validates and decodes a checkpoint frame.
///
/// Returns `Some((superstep, states, aux))` only if *every* integrity
/// check passes: minimum length, magic, version, trailing CRC over the
/// whole frame, fingerprint match, declared record count matching both
/// the payload length and `expected_count`, declared aux length
/// matching the remaining bytes. Any failure — a torn write, a frame
/// from a different graph or program, a short file — yields `None`;
/// the caller falls back to the other slot or to a fresh run.
pub fn decode_frame<S: Record>(
    bytes: &[u8],
    expected_fingerprint: u64,
    expected_count: usize,
) -> Option<(u64, Vec<S>, Vec<u8>)> {
    if bytes.len() < HEADER + TRAILER {
        return None;
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - TRAILER);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    if crc32(body) != stored_crc {
        return None;
    }
    if body[..4] != MAGIC {
        return None;
    }
    let u32_at = |o: usize| u32::from_le_bytes(body[o..o + 4].try_into().unwrap());
    let u64_at = |o: usize| u64::from_le_bytes(body[o..o + 8].try_into().unwrap());
    if u32_at(4) != VERSION {
        return None;
    }
    if u64_at(8) != expected_fingerprint {
        return None;
    }
    let superstep = u64_at(16);
    let count = u64_at(24);
    if count != expected_count as u64 {
        return None;
    }
    let aux_len = u64_at(32) as usize;
    let payload_len = expected_count * S::SIZE;
    if body.len() - HEADER != payload_len + aux_len {
        return None;
    }
    let payload = &body[HEADER..HEADER + payload_len];
    let aux = body[HEADER + payload_len..].to_vec();
    Some((superstep, decode_records::<S>(payload), aux))
}

/// Type-agnostic structural validity check: minimum length, magic,
/// version, and trailing CRC over the whole frame. Does *not* check
/// fingerprint, record count, or state size — this is what `xstream
/// scrub` uses to judge a checkpoint slot without knowing the program
/// that wrote it. A frame that passes here can still be rejected by
/// [`decode_frame`] at resume time (wrong graph or config); a frame
/// that fails here is torn or rotted and safe to quarantine.
pub fn frame_is_valid(bytes: &[u8]) -> bool {
    if bytes.len() < HEADER + TRAILER {
        return false;
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - TRAILER);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    crc32(body) == stored_crc
        && body[..4] == MAGIC
        && u32::from_le_bytes(body[4..8].try_into().unwrap()) == VERSION
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let states: Vec<u64> = (0..257).map(|i| i * 3 + 1).collect();
        let fp = fingerprint(&[b"graph", b"program"]);
        let frame = encode_frame(fp, 7, &states, b"frontier-bits");
        let (step, back, aux) = decode_frame::<u64>(&frame, fp, states.len()).expect("valid frame");
        assert_eq!(step, 7);
        assert_eq!(back, states);
        assert_eq!(aux, b"frontier-bits");
    }

    #[test]
    fn empty_payload_roundtrips() {
        let frame = encode_frame::<u32>(1, 0, &[], &[]);
        let (step, back, aux) = decode_frame::<u32>(&frame, 1, 0).expect("valid frame");
        assert_eq!(step, 0);
        assert!(back.is_empty());
        assert!(aux.is_empty());
    }

    #[test]
    fn corruption_is_rejected() {
        let states: Vec<u32> = (0..64).collect();
        let fp = 0xDEAD_BEEF;
        let frame = encode_frame(fp, 3, &states, b"aux");
        // Flip one bit in each region: magic, header ints, payload, CRC.
        for &pos in &[0usize, 6, 12, 20, 28, HEADER + 5, frame.len() - 1] {
            let mut bad = frame.clone();
            bad[pos] ^= 0x10;
            assert!(
                decode_frame::<u32>(&bad, fp, states.len()).is_none(),
                "bit flip at {pos} must invalidate the frame"
            );
        }
    }

    #[test]
    fn truncation_and_mismatches_are_rejected() {
        let states: Vec<u32> = (0..16).collect();
        let fp = 42;
        let frame = encode_frame(fp, 2, &states, b"bitmap");
        // Torn writes of every length (write_atomic should prevent
        // these from ever being seen, but the codec must still hold).
        for cut in 0..frame.len() {
            assert!(decode_frame::<u32>(&frame[..cut], fp, states.len()).is_none());
        }
        // Wrong fingerprint (different graph/program) and wrong count
        // (different partitioning) are both rejected.
        assert!(decode_frame::<u32>(&frame, fp + 1, states.len()).is_none());
        assert!(decode_frame::<u32>(&frame, fp, states.len() + 1).is_none());
        // Wrong state type (different record size).
        assert!(decode_frame::<u64>(&frame, fp, states.len()).is_none());
    }

    #[test]
    fn structural_validity_is_type_agnostic() {
        let states: Vec<u32> = (0..16).collect();
        let frame = encode_frame(99, 2, &states, b"aux");
        assert!(frame_is_valid(&frame));
        // It passes without knowing fingerprint, count, or state type.
        // Any bit flip or truncation fails it.
        for pos in 0..frame.len() {
            let mut bad = frame.clone();
            bad[pos] ^= 0x20;
            assert!(!frame_is_valid(&bad), "flip at {pos}");
        }
        for cut in 0..frame.len() {
            assert!(!frame_is_valid(&frame[..cut]));
        }
    }

    #[test]
    fn fingerprint_is_order_and_boundary_sensitive() {
        assert_ne!(fingerprint(&[b"ab", b"c"]), fingerprint(&[b"a", b"bc"]));
        assert_ne!(fingerprint(&[b"a", b"b"]), fingerprint(&[b"b", b"a"]));
        assert_eq!(fingerprint(&[b"a", b"b"]), fingerprint(&[b"a", b"b"]));
    }
}
