//! The X-Stream out-of-core streaming engine (paper §3).
//!
//! Processes graphs whose edges and updates live on SSD or magnetic
//! disk. *Fast storage* is main memory: only the vertex state of the
//! streaming partition being processed (plus fixed stream buffers) is
//! held in memory; edges and updates are streamed in large sequential
//! chunks with prefetch distance 1.
//!
//! The engine stores three streams per partition — vertices, edges and
//! updates — inside a [`xstream_storage::StreamStore`]. Pre-processing
//! is a single streaming shuffle of the unordered input edge list into
//! the per-partition edge files: no sorting, ever. The streaming entry
//! point is [`DiskEngine::from_ingest`] with an [`EdgeIngest`]
//! descriptor (path + on-the-fly mirroring), which never materializes
//! the graph; [`DiskEngine::from_graph`] exists for callers that
//! already hold an in-memory edge list (tests, benches, generators).
//!
//! Like the in-memory engine, the superstep hot path is built for a
//! **zero-allocation, fully overlapped steady state**: a persistent
//! read-ahead thread streams edge and update files (rolling into the
//! next partition's file while the current one computes, §3.3), a
//! persistent writer thread drains spills from a recycling byte-buffer
//! pool, scatter fans loaded chunks out to a parked
//! [`xstream_storage::WorkerPool`] whose workers append into pooled
//! per-partition buckets, and update streams are truncated (a TRIM)
//! rather than deleted so file handles survive across supersteps. See
//! [`engine`] for the pipeline walk-through and
//! [`DiskEngine::try_scatter_gather_reference`] for the retained
//! allocate-per-superstep baseline.

//! # Examples
//!
//! ```
//! use xstream_core::{Edge, EdgeProgram, Engine, EngineConfig, Termination, VertexId};
//! use xstream_disk::DiskEngine;
//! use xstream_storage::StreamStore;
//!
//! struct MinLabel;
//!
//! impl EdgeProgram for MinLabel {
//!     type State = u32;
//!     type Update = u32;
//!     fn init(&self, v: VertexId) -> u32 { v }
//!     fn scatter(&self, s: &u32, _e: &Edge) -> Option<u32> { Some(*s) }
//!     fn gather(&self, d: &mut u32, u: &u32) -> bool {
//!         if u < d { *d = *u; true } else { false }
//!     }
//! }
//!
//! let dir = std::env::temp_dir().join("xstream_disk_doc");
//! # let _ = std::fs::remove_dir_all(&dir);
//! let store = StreamStore::new(&dir, 1 << 16)?;
//! let graph = xstream_graph::edgelist::from_pairs(4, &[(0, 1), (1, 2), (3, 2)])
//!     .to_undirected();
//! let program = MinLabel;
//! let config = EngineConfig::default()
//!     .with_memory_budget(1 << 20)
//!     .with_io_unit(1 << 14);
//! let mut engine = DiskEngine::from_graph(store, &graph, &program, config)?;
//! engine.run(&program, Termination::Converged);
//! assert_eq!(engine.states(), vec![0, 0, 0, 0]);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok::<(), xstream_core::Error>(())
//! ```

pub mod checkpoint;
pub mod engine;
pub mod scrub;
pub mod vertices;

pub use engine::{DiskEngine, EdgeIngest};
pub use scrub::{scrub, Action, ScrubReport, StreamReport, Verdict};
