//! The out-of-core engine's main loop (paper Fig. 6).
//!
//! Scatter and shuffle are merged: scatter appends updates to an
//! in-memory buffer; whenever the buffer fills, it is shuffled in
//! memory and each partition's chunk is appended to that partition's
//! update file. The gather phase then streams each partition's update
//! file. Two §3.2 optimizations are implemented: the vertex array
//! stays in memory when it fits the budget, and updates skip the disk
//! entirely when one stream buffer holds the whole scatter output.

use std::mem::size_of;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use crate::vertices::VertexStorage;
use xstream_core::program::TargetedUpdate;
use xstream_core::record::{records_as_bytes, RecordIter};
use xstream_core::{
    Edge, EdgeProgram, Engine, EngineConfig, Error, IterationStats, Partitioner, Record, Result,
    VertexId,
};
use xstream_graph::fileio::EdgeFileReader;
use xstream_graph::EdgeList;
use xstream_storage::shuffle::shuffle;
use xstream_storage::{AsyncWriter, ShuffleArena, StreamBuffer, StreamStore};

/// Name of the edge stream of partition `p`.
pub fn edge_stream(p: usize) -> String {
    format!("edges.{p}")
}

/// Name of the update stream of partition `p`.
pub fn update_stream(p: usize) -> String {
    format!("updates.{p}")
}

/// The out-of-core streaming engine.
pub struct DiskEngine<P: EdgeProgram> {
    config: EngineConfig,
    store: Arc<StreamStore>,
    partitioner: Partitioner,
    num_edges: usize,
    vertices: VertexStorage<P::State>,
    /// Update records buffered in memory before a spill.
    spill_threshold: usize,
    /// §3.2 optimization 2: the shuffled scatter output, kept in memory
    /// when it never overflowed the stream buffer.
    mem_updates: Option<StreamBuffer<TargetedUpdate<P::Update>>>,
    /// Pooled arena for the per-spill in-memory shuffle: spills recur
    /// many times per superstep, and reusing one arena keeps them from
    /// allocating a fresh stream buffer each time.
    spill_arena: ShuffleArena<TargetedUpdate<P::Update>>,
}

impl<P: EdgeProgram> DiskEngine<P> {
    /// Builds an engine from an in-memory edge list, writing the
    /// partition edge files into `store`.
    pub fn from_graph(
        store: StreamStore,
        graph: &EdgeList,
        program: &P,
        config: EngineConfig,
    ) -> Result<Self> {
        let chunk = (config.io_unit / Edge::SIZE).max(1);
        let chunks = graph.edges().chunks(chunk).map(|c| Ok(c.to_vec()));
        Self::build(store, graph.num_vertices(), chunks, program, config)
    }

    /// Builds an engine by streaming an on-disk edge file (the paper's
    /// input path: pre-processing reads the unordered list once and
    /// shuffles it into partition files — no sort).
    pub fn from_edge_file(
        store: StreamStore,
        path: &Path,
        program: &P,
        config: EngineConfig,
    ) -> Result<Self> {
        let mut reader = EdgeFileReader::open(path)?;
        let num_vertices = reader.num_vertices();
        let chunk = (config.io_unit / Edge::SIZE).max(1);
        let iter = std::iter::from_fn(move || reader.next_chunk(chunk).transpose());
        Self::build(store, num_vertices, iter, program, config)
    }

    fn build(
        store: StreamStore,
        num_vertices: usize,
        edge_chunks: impl Iterator<Item = Result<Vec<Edge>>>,
        program: &P,
        config: EngineConfig,
    ) -> Result<Self> {
        let state_bytes = num_vertices * size_of::<P::State>();
        let k = config.out_of_core_partitions(state_bytes).ok_or_else(|| {
            Error::Config(format!(
                "memory budget {} cannot satisfy N/K + 5SK <= M for N = {state_bytes}, S = {}",
                config.memory_budget, config.io_unit
            ))
        })?;
        let partitioner = Partitioner::new(num_vertices, k);
        let kp = partitioner.num_partitions();

        // Pre-processing (§3.2): stream the input, shuffle each loaded
        // chunk in memory, append per-partition runs to the edge files.
        // The appends run on the dedicated writer thread so reading and
        // shuffling the next input chunk overlaps them (§3.3).
        let store = Arc::new(store);
        let mut num_edges = 0usize;
        {
            let writer = AsyncWriter::new(Arc::clone(&store), 1)?;
            for chunk in edge_chunks {
                let chunk = chunk?;
                num_edges += chunk.len();
                let buf = shuffle(&chunk, kp, |e| partitioner.partition_of(e.src));
                for (p, run) in buf.iter_chunks() {
                    if !run.is_empty() {
                        writer.submit(edge_stream(p), records_as_bytes(run).to_vec())?;
                    }
                }
            }
            writer.finish()?;
        }

        let usz = size_of::<TargetedUpdate<P::Update>>();
        // The stream buffer must admit at least one I/O unit per
        // partition (§3.4 sizing: chunk array of S*K bytes).
        let buffer_bytes = (config.memory_budget / 4)
            .max(config.io_unit.saturating_mul(kp))
            .max(1 << 20);
        let spill_threshold = (buffer_bytes / usz).max(1024);

        let in_memory_vertices =
            config.keep_vertices_in_memory && state_bytes <= config.memory_budget / 2;
        let vertices = VertexStorage::initialize(&store, &partitioner, in_memory_vertices, |v| {
            program.init(v)
        })?;

        Ok(Self {
            config,
            store,
            partitioner,
            num_edges,
            vertices,
            spill_threshold,
            mem_updates: None,
            spill_arena: ShuffleArena::new(),
        })
    }

    /// The partitioner in use (exposed for experiments).
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The underlying stream store (for I/O accounting inspection).
    pub fn store(&self) -> &StreamStore {
        &self.store
    }

    /// Fallible scatter-gather superstep; the [`Engine`] trait method
    /// panics on I/O errors, this variant reports them.
    pub fn try_scatter_gather(&mut self, program: &P) -> Result<IterationStats> {
        let mut stats = IterationStats::default();
        let kp = self.partitioner.num_partitions();
        let usz = size_of::<TargetedUpdate<P::Update>>() as u64;
        let snap0 = self.store.accounting().snapshot();
        let mut streaming_ns = 0u64;

        // ---- Merged scatter + shuffle (Fig. 6) ----
        let t_scatter = Instant::now();
        let mut pending: Vec<TargetedUpdate<P::Update>> = Vec::new();
        let mut spilled = false;
        {
            // Update-file appends run on the dedicated writer thread
            // with depth 1: the engine shuffles and scatters the next
            // buffer while the previous one drains (§3.3).
            let writer = AsyncWriter::new(Arc::clone(&self.store), 1)?;
            let store = &self.store;
            let partitioner = &self.partitioner;
            let vertices = &self.vertices;
            let spill_arena = &mut self.spill_arena;
            let threads = self.config.threads.max(1);
            for s in partitioner.iter() {
                let states = vertices.load(store, partitioner, s)?;
                let base = partitioner.range(s).start;
                let mut reader = store.reader_aligned(&edge_stream(s), Edge::SIZE)?;
                loop {
                    let t_io = Instant::now();
                    let Some(bytes) = reader.next_chunk()? else {
                        break;
                    };
                    streaming_ns += t_io.elapsed().as_nanos() as u64;
                    let n_edges = bytes.len() / Edge::SIZE;
                    stats.edges_streamed += n_edges as u64;
                    // §4.3 layering: the loaded chunk is processed with
                    // the in-memory engine's parallel primitives — here,
                    // a parallel scatter over sub-slices of the chunk.
                    let outputs = scatter_chunk::<P>(program, &states, base, &bytes, threads);
                    for mut o in outputs {
                        stats.updates_generated += o.len() as u64;
                        pending.append(&mut o);
                    }
                    if pending.len() >= self.spill_threshold {
                        let t_io = Instant::now();
                        spill(&writer, partitioner, kp, &mut pending, spill_arena)?;
                        streaming_ns += t_io.elapsed().as_nanos() as u64;
                        spilled = true;
                    }
                }
            }
            // §3.2 optimization 2: keep updates in memory when they all
            // fit in one stream buffer.
            if !spilled && self.config.in_memory_updates {
                let buf = shuffle(&pending, kp, |u| partitioner.partition_of(u.target));
                self.mem_updates = Some(buf);
            } else if !pending.is_empty() {
                let t_io = Instant::now();
                spill(&writer, partitioner, kp, &mut pending, spill_arena)?;
                streaming_ns += t_io.elapsed().as_nanos() as u64;
            }
            // The gather phase must observe every update: drain the
            // writer before leaving the scatter phase.
            writer.finish()?;
        }
        stats.scatter_ns = t_scatter.elapsed().as_nanos() as u64;

        // ---- Gather ----
        let t_gather = Instant::now();
        let mem_updates = self.mem_updates.take();
        for p in self.partitioner.iter() {
            let mut states = self.vertices.load_mut(&self.store, &self.partitioner, p)?;
            let base = self.partitioner.range(p).start;
            let mut changed = false;
            if let Some(buf) = &mem_updates {
                for u in buf.chunk(p) {
                    stats.updates_applied += 1;
                    let local = u.target as usize - base;
                    if program.gather(&mut states[local], &u.payload) {
                        stats.vertices_changed += 1;
                        changed = true;
                    }
                }
            } else {
                let mut reader = self
                    .store
                    .reader_aligned(&update_stream(p), size_of::<TargetedUpdate<P::Update>>())?;
                loop {
                    let t_io = Instant::now();
                    let Some(bytes) = reader.next_chunk()? else {
                        break;
                    };
                    streaming_ns += t_io.elapsed().as_nanos() as u64;
                    for u in RecordIter::<TargetedUpdate<P::Update>>::new(&bytes) {
                        stats.updates_applied += 1;
                        let local = u.target as usize - base;
                        if program.gather(&mut states[local], &u.payload) {
                            stats.vertices_changed += 1;
                            changed = true;
                        }
                    }
                }
            }
            if changed {
                self.vertices
                    .store_back(&self.store, &self.partitioner, p, &states)?;
            }
            // Destroying the stream truncates the file — a TRIM (§3.3).
            self.store.delete(&update_stream(p))?;
        }
        stats.gather_ns = t_gather.elapsed().as_nanos() as u64;

        let snap1 = self.store.accounting().snapshot();
        stats.bytes_read = snap1.bytes_read() - snap0.bytes_read();
        stats.bytes_written = snap1.bytes_written() - snap0.bytes_written();
        stats.streaming_ns = streaming_ns;
        stats.mem_refs =
            stats.edges_streamed * 2 + stats.updates_generated + stats.updates_applied * 2;
        let _ = usz;
        Ok(stats)
    }
}

/// Scatters one decoded edge chunk across `threads` workers, each
/// producing its own update slice (the §4.3 layering of in-memory
/// parallelism over loaded disk chunks).
fn scatter_chunk<P: EdgeProgram>(
    program: &P,
    states: &[P::State],
    base: usize,
    bytes: &[u8],
    threads: usize,
) -> Vec<Vec<TargetedUpdate<P::Update>>> {
    let n_edges = bytes.len() / Edge::SIZE;
    let run = |range: std::ops::Range<usize>| -> Vec<TargetedUpdate<P::Update>> {
        let mut out = Vec::new();
        let slice = &bytes[range.start * Edge::SIZE..range.end * Edge::SIZE];
        for e in RecordIter::<Edge>::new(slice) {
            let src_state = &states[(e.src as usize) - base];
            if !program.needs_scatter(src_state) {
                continue;
            }
            if let Some(u) = program.scatter(src_state, &e) {
                out.push(TargetedUpdate::new(e.dst, u));
            }
        }
        out
    };
    if threads <= 1 || n_edges < 4096 {
        return vec![run(0..n_edges)];
    }
    let per = n_edges.div_ceil(threads);
    std::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = (t * per).min(n_edges);
                let hi = ((t + 1) * per).min(n_edges);
                scope.spawn(move || run(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scatter worker panicked"))
            .collect()
    })
}

/// In-memory shuffle of the pending buffer followed by per-partition
/// appends to the update files via the background writer (the merged
/// shuffle of Fig. 6 with the write overlap of §3.3). The shuffle
/// reuses the engine's pooled arena: spills recur once per filled
/// stream buffer, so the chunk array and count/offset arrays are
/// allocated once per engine rather than once per spill.
fn spill<U: Record>(
    writer: &AsyncWriter,
    partitioner: &Partitioner,
    kp: usize,
    pending: &mut Vec<TargetedUpdate<U>>,
    arena: &mut ShuffleArena<TargetedUpdate<U>>,
) -> Result<()> {
    arena.shuffle(pending, kp, |u| partitioner.partition_of(u.target));
    for (p, run) in arena.iter_chunks() {
        if !run.is_empty() {
            writer.submit(update_stream(p), records_as_bytes(run).to_vec())?;
        }
    }
    pending.clear();
    Ok(())
}

impl<P: EdgeProgram> Engine<P> for DiskEngine<P> {
    fn num_vertices(&self) -> usize {
        self.partitioner.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn scatter_gather(&mut self, program: &P) -> IterationStats {
        self.try_scatter_gather(program)
            .expect("out-of-core scatter-gather failed")
    }

    fn vertex_map(&mut self, f: &mut dyn FnMut(VertexId, &mut P::State)) {
        for p in self.partitioner.iter() {
            let mut states = self
                .vertices
                .load_mut(&self.store, &self.partitioner, p)
                .expect("vertex load failed");
            let base = self.partitioner.range(p).start;
            for (i, s) in states.iter_mut().enumerate() {
                f((base + i) as VertexId, s);
            }
            self.vertices
                .store_back(&self.store, &self.partitioner, p, &states)
                .expect("vertex store failed");
        }
    }

    fn vertex_fold(
        &mut self,
        init: f64,
        f: &mut dyn FnMut(f64, VertexId, &P::State) -> f64,
    ) -> f64 {
        let mut acc = init;
        for p in self.partitioner.iter() {
            let states = self
                .vertices
                .load(&self.store, &self.partitioner, p)
                .expect("vertex load failed");
            let base = self.partitioner.range(p).start;
            for (i, s) in states.iter().enumerate() {
                acc = f(acc, (base + i) as VertexId, s);
            }
        }
        acc
    }

    fn states(&mut self) -> Vec<P::State> {
        self.vertices
            .collect_all(&self.store, &self.partitioner)
            .expect("vertex collect failed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xstream_core::Termination;
    use xstream_graph::generators;

    struct MinLabel;

    impl EdgeProgram for MinLabel {
        type State = u32;
        type Update = u32;

        fn init(&self, v: VertexId) -> u32 {
            v
        }

        fn scatter(&self, s: &u32, _e: &Edge) -> Option<u32> {
            Some(*s)
        }

        fn gather(&self, d: &mut u32, u: &u32) -> bool {
            if u < d {
                *d = *u;
                true
            } else {
                false
            }
        }
    }

    fn temp_store(tag: &str) -> StreamStore {
        let root = std::env::temp_dir().join(format!("xstream_disk_eng_{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        StreamStore::new(&root, 8192).unwrap()
    }

    fn small_config() -> EngineConfig {
        EngineConfig::default()
            .with_threads(2)
            .with_io_unit(8192)
            .with_memory_budget(1 << 20)
    }

    #[test]
    fn min_label_matches_in_memory_engine() {
        let g = generators::erdos_renyi(300, 2500, 21).to_undirected();
        let store = temp_store("minlabel");
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, small_config()).unwrap();
        disk.run(&MinLabel, Termination::Converged);
        let disk_states = disk.states();

        let mut mem = xstream_memory::InMemoryEngine::from_graph(
            &g,
            &MinLabel,
            EngineConfig::default().with_threads(2).with_partitions(8),
        );
        mem.run(&MinLabel, Termination::Converged);
        assert_eq!(disk_states, mem.states());
    }

    #[test]
    fn forced_spilling_still_correct() {
        // A tiny spill threshold forces the update files path.
        let g = generators::path(200).to_undirected();
        let store = temp_store("spill");
        let cfg = EngineConfig {
            in_memory_updates: false,
            ..small_config()
        };
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, cfg).unwrap();
        disk.run(&MinLabel, Termination::Converged);
        assert!(disk.states().iter().all(|&l| l == 0));
    }

    #[test]
    fn on_disk_vertices_path() {
        let g = generators::cycle(64);
        let store = temp_store("ondiskverts");
        let cfg = EngineConfig {
            keep_vertices_in_memory: false,
            ..small_config()
        };
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, cfg).unwrap();
        disk.run(&MinLabel, Termination::Converged);
        assert!(disk.states().iter().all(|&l| l == 0));
    }

    #[test]
    fn from_edge_file_roundtrip() {
        let dir = std::env::temp_dir().join("xstream_disk_input_fromfile");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = generators::erdos_renyi(100, 900, 5).to_undirected();
        xstream_graph::fileio::write_edge_file(&path, &g).unwrap();
        let store = temp_store("fromfile");
        let mut disk = DiskEngine::from_edge_file(store, &path, &MinLabel, small_config()).unwrap();
        assert_eq!(disk.num_edges(), g.num_edges());
        disk.run(&MinLabel, Termination::Converged);
        let mut mem = xstream_memory::InMemoryEngine::from_graph(
            &g,
            &MinLabel,
            EngineConfig::default().with_partitions(4),
        );
        mem.run(&MinLabel, Termination::Converged);
        assert_eq!(disk.states(), mem.states());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_accounting_sees_edge_traffic() {
        let g = generators::erdos_renyi(200, 5000, 8);
        let store = temp_store("acct");
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, small_config()).unwrap();
        let it = disk.try_scatter_gather(&MinLabel).unwrap();
        assert_eq!(it.edges_streamed, 5000);
        // Edges are read from disk every iteration.
        assert!(it.bytes_read >= (5000 * Edge::SIZE) as u64);
    }

    #[test]
    fn vertex_map_and_fold_on_disk() {
        let g = generators::path(50);
        let store = temp_store("vmap");
        let cfg = EngineConfig {
            keep_vertices_in_memory: false,
            ..small_config()
        };
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, cfg).unwrap();
        disk.vertex_map(&mut |v, s| *s = v + 1);
        let sum = disk.vertex_fold(0.0, &mut |acc, _v, s| acc + *s as f64);
        assert_eq!(sum, (1..=50).map(f64::from).sum::<f64>());
    }

    #[test]
    fn infeasible_budget_is_reported() {
        let g = generators::path(1 << 16);
        let store = temp_store("infeasible");
        let cfg = EngineConfig::default()
            .with_io_unit(16 << 20)
            .with_memory_budget(1 << 10);
        let r = DiskEngine::from_graph(store, &g, &MinLabel, cfg);
        assert!(matches!(r, Err(Error::Config(_))));
    }
}
