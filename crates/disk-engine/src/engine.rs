//! The out-of-core engine's main loop (paper Fig. 6), built — like the
//! in-memory engine — around a zero-allocation, fully overlapped
//! steady state, with every phase striped across the worker pool and
//! every stream striped across its storage device's own I/O threads.
//!
//! One superstep is:
//!
//! 1. **Scatter + fused shuffle** — the persistent striped
//!    [`ReadAhead`] (one prefetch thread per device of the store's
//!    `device_fn`, Fig. 15) streams each partition's edge file with
//!    prefetch distance 1 *and rolls into the next partition's file
//!    while this one still computes* (§3.3). Every loaded chunk fans
//!    out to the engine's parked [`WorkerPool`] workers, which append
//!    updates *directly into per-partition buckets* of their own
//!    pooled [`ShuffleScratch`] slice (the §4.3 layering of the
//!    in-memory primitives over loaded disk chunks, with the
//!    single-stage shuffle fused into scatter). The engine keeps
//!    **two** such bucket pools — the paper's two output buffers —
//!    and spills are **zero-copy**: when the filling pool reaches the
//!    stream-buffer budget the pools swap, and each bucket run of the
//!    full pool is submitted *by reference* to the persistent
//!    [`AsyncWriter`] (one writer thread per device), which appends
//!    straight from the bucket memory while the workers scatter into
//!    the other pool (§3.3's double-buffered output without the copy).
//! 2. **Gather** — updates generated after the last spill stay
//!    *resident* in the filling pool and are gathered from memory (a
//!    generalization of §3.2 optimization 2: the tail buffer exists
//!    either way, so it never pays the disk round trip). Spilled
//!    partitions gather from their update files; with the vertex
//!    array in memory and more than one streaming partition, the
//!    partitions gather **in parallel on the pool workers** — each
//!    partition owns a disjoint vertex-state slice, so workers apply
//!    `program.gather` with no locks, and each worker streams its own
//!    partition's file so the load of one partition overlaps the
//!    apply of another (Fig. 14's core scaling applied to gather; see
//!    [`EngineConfig::gather_threads`]). The serial fallback (on-disk
//!    vertex state, one partition, or `gather_threads = 1`) streams
//!    files through the read-ahead thread exactly as the paper
//!    describes. Update streams are truncated, not deleted (a TRIM,
//!    §3.3), so their file handles — and the buffer pools — survive
//!    into the next superstep.
//!
//! Two §3.2 optimizations are implemented: the vertex array stays in
//! memory when it fits the budget, and updates skip the disk entirely
//! (gather reads the scratch buckets directly) when one stream buffer
//! holds the whole scatter output.
//!
//! For programs that opt into [`FrontierMode::Tracked`], the engine
//! additionally keeps a double-buffered active-vertex bitmap
//! ([`FrontierPair`]): gather marks every vertex it changed, and the
//! next scatter decides per partition — *before* queueing any
//! read-ahead — whether to **skip** it outright (no active sources:
//! zero I/O), stream it **densely** as above, or run an **index-based
//! sparse scatter** (Ligra's hybrid, applied to streams): ingest
//! groups each partition's edge file by source vertex and writes a
//! per-vertex run-offset index (`index.p`), so a sparse partition
//! issues pooled ranged reads of just the active vertices' edge runs.
//! The dense/sparse switch compares the active edge count against
//! [`EngineConfig::wants_sparse_scatter`]'s threshold.
//!
//! All memory — the two scatter bucket pools, spill byte buffers, read
//! chunks, vertex decode scratch, gather stream buffers, interned
//! stream names — is owned by the engine or its per-device I/O threads
//! and recycled across supersteps; the I/O threads and the worker pool
//! are spawned once at construction. This holds for on-disk vertex
//! state too: partition loads decode into pooled scratch
//! ([`VertexStorage::load_scatter`]) and write-backs truncate + append
//! through cached handles. Once every pooled buffer has seen its
//! high-water mark, a superstep performs **no heap allocation** and
//! spawns **no threads** (tracked in [`IterationStats::alloc_count`]
//! via [`xstream_core::alloc_stats`]). `streaming_ns` counts only the
//! time the superstep thread was *blocked* on stream I/O (waiting for
//! a read chunk, for writer backpressure, or for a spill/drain
//! barrier), making the Fig. 12b runtime/streaming ratios comparable
//! to the in-memory engine's. The previous allocate-per-superstep
//! pipeline is retained as
//! [`DiskEngine::try_scatter_gather_reference`] for ablations,
//! differential tests and the `disk_superstep` benchmark baseline.

use std::mem::size_of;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use crate::vertices::VertexStorage;
use xstream_core::program::TargetedUpdate;
use xstream_core::record::{records_as_bytes, RecordIter};
use xstream_core::{
    alloc_stats, Edge, EdgeProgram, Engine, EngineConfig, Error, FrontierMode, FrontierPair,
    IterationStats, Partitioner, Record, Result, VertexId,
};
use xstream_graph::fileio::EdgeFileReader;
use xstream_graph::{EdgeList, MirrorMode};
use xstream_storage::pool::{PerWorkerPtr, WorkerPool};
use xstream_storage::shuffle::MultiStagePlan;
use xstream_storage::topology::Topology;
use xstream_storage::{
    AsyncWriter, Manifest, ReadAhead, ShuffleArena, ShufflePool, ShuffleScratch, StreamEntry,
    StreamRole, StreamStore, WriteMark, MANIFEST_NAME,
};

/// Path-based ingest descriptor: *what* edge file to stream and *how*
/// to expand it on the fly during the pre-processing shuffle.
///
/// This is the out-of-core entry point the paper describes (§3: one
/// streaming pass over an unordered edge list, no sort, no in-memory
/// graph): [`DiskEngine::from_ingest`] reads the file chunk by chunk,
/// applies the [`MirrorMode`] to each loaded chunk *before* partition
/// routing, and appends the shuffled runs to the partition edge files.
/// The undirected/bidirectional doubling that
/// [`EdgeList::to_undirected`]/[`EdgeList::to_bidirectional`] perform
/// in RAM therefore costs O(chunk) memory here, and ingest as a whole
/// is bounded by the chunk buffers plus vertex state — never the edge
/// list.
#[derive(Clone)]
pub struct EdgeIngest {
    path: PathBuf,
    mirror: MirrorMode,
    /// Per-chunk observer invoked on every ingested (post-mirror,
    /// validated) chunk; lets callers fold a second streaming pass —
    /// e.g. PageRank's out-degree count — into the one ingest pass.
    observer: Option<ChunkObserver>,
}

/// Shared per-chunk ingest callback (see [`EdgeIngest::with_observer`]).
type ChunkObserver = Arc<dyn Fn(&[Edge]) + Send + Sync>;

impl std::fmt::Debug for EdgeIngest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeIngest")
            .field("path", &self.path)
            .field("mirror", &self.mirror)
            .field("observer", &self.observer.as_ref().map(|_| "Fn(&[Edge])"))
            .finish()
    }
}

impl EdgeIngest {
    /// Streams the file as stored (directed).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            mirror: MirrorMode::None,
            observer: None,
        }
    }

    /// Streams the file with on-the-fly undirected expansion (every
    /// chunk is mirrored before partition routing; self-loops stay
    /// single).
    pub fn undirected(path: impl Into<PathBuf>) -> Self {
        Self::new(path).with_mirror(MirrorMode::Undirected)
    }

    /// Streams the file with on-the-fly bidirectional expansion
    /// (forward/backward direction tags for SCC-style traversals).
    pub fn bidirectional(path: impl Into<PathBuf>) -> Self {
        Self::new(path).with_mirror(MirrorMode::Bidirectional)
    }

    /// Replaces the mirroring mode.
    pub fn with_mirror(mut self, mirror: MirrorMode) -> Self {
        self.mirror = mirror;
        self
    }

    /// Installs a per-chunk observer called on every ingested chunk
    /// *after* mirroring and validation. The observer sees exactly the
    /// edges the engine will stream — doubled for undirected ingest —
    /// which makes it the place to fold auxiliary whole-graph passes
    /// (degree counting, histograms) into the single ingest read
    /// instead of re-reading the edge file.
    pub fn with_observer(mut self, f: impl Fn(&[Edge]) + Send + Sync + 'static) -> Self {
        self.observer = Some(Arc::new(f));
        self
    }

    /// The edge file to stream.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The chunk-level expansion applied during ingest.
    pub fn mirror(&self) -> MirrorMode {
        self.mirror
    }
}

/// Name of the edge stream of partition `p`.
pub fn edge_stream(p: usize) -> String {
    format!("edges.{p}")
}

/// Name of the update stream of partition `p`.
pub fn update_stream(p: usize) -> String {
    format!("updates.{p}")
}

/// Name of the sparse-scatter index stream of partition `p`: one
/// native-endian `u32` edge-record offset per local vertex plus a
/// trailing total, so vertex `v`'s edge run in the (source-grouped)
/// edge file is `offsets[lv] .. offsets[lv + 1]`.
pub fn index_stream(p: usize) -> String {
    format!("index.{p}")
}

/// The engine-config `(flag, value)` pairs that decide the on-disk
/// layout and the semantics of a resumed run. Recorded in the store
/// manifest and folded into the checkpoint fingerprint, so `--resume`
/// under a changed flag fails with a message *naming* the flag instead
/// of silently restarting (or worse, resuming wrong).
/// The non-flag `vertices` entry records the graph shape so `xstream
/// scrub --repair` can reconstruct the partitioner (and thus rebuild an
/// index stream) from the manifest alone.
fn layout_flags(config: &EngineConfig, kp: usize, num_vertices: usize) -> Vec<(String, String)> {
    vec![
        ("vertices".into(), num_vertices.to_string()),
        ("--partitions".into(), kp.to_string()),
        ("--io-unit".into(), config.io_unit.to_string()),
        (
            "--frontier-threshold".into(),
            config.frontier_threshold.to_string(),
        ),
        (
            "--no-frontier-skip".into(),
            (!config.frontier_skip).to_string(),
        ),
    ]
}

/// Rejects a resume whose layout-deciding flags differ from the
/// store's previous manifest, naming the first offending flag — the
/// alternative is a fingerprint mismatch the user can't diagnose (or,
/// for flags outside the fingerprint, a silently wrong resume).
fn check_layout_compatible(flags: &[(String, String)], prior: &[(String, String)]) -> Result<()> {
    for (flag, val) in flags {
        if let Some((_, prev)) = prior.iter().find(|(k, _)| k == flag) {
            if prev != val {
                return Err(Error::Config(format!(
                    "cannot --resume: {flag} changed from {prev} to {val}; \
                     rerun with the original value or drop --resume to start fresh"
                )));
            }
        }
    }
    Ok(())
}

/// The fingerprint binding checkpoints and the store manifest to this
/// exact (graph shape, program, state layout, layout-deciding config)
/// combination.
fn run_fingerprint<P: EdgeProgram>(
    num_vertices: usize,
    num_edges: usize,
    flags: &[(String, String)],
) -> u64 {
    let nv = (num_vertices as u64).to_le_bytes();
    let ne = (num_edges as u64).to_le_bytes();
    let ss = (size_of::<P::State>() as u64).to_le_bytes();
    let ty = std::any::type_name::<P>();
    let mut parts: Vec<&[u8]> = Vec::with_capacity(4 + flags.len() * 2);
    parts.extend([&nv[..], &ne[..], &ss[..], ty.as_bytes()]);
    for (k, v) in flags {
        parts.push(k.as_bytes());
        parts.push(v.as_bytes());
    }
    crate::checkpoint::fingerprint(&parts)
}

/// Per-partition scatter modes for one superstep (pooled in
/// `DiskEngine::modes`).
const MODE_DENSE: u8 = 0;
const MODE_SKIP: u8 = 1;
const MODE_SPARSE: u8 = 2;

/// Reads the `i`-th native-endian `u32` of a raw index stream.
#[inline]
fn index_at(buf: &[u8], i: usize) -> u32 {
    u32::from_ne_bytes(buf[i * 4..i * 4 + 4].try_into().expect("u32 record"))
}

/// Per-worker gather counters, cache-line aligned so concurrent
/// workers never false-share a line on their hottest loop.
#[derive(Debug, Default, Clone, Copy)]
#[repr(align(64))]
struct GatherCounters {
    applied: u64,
    changed: u64,
    /// Time this worker spent loading update files (`read_all_into`);
    /// the lane-wise maximum is the gather's critical-path I/O time.
    io_ns: u64,
}

/// Raw pointer wrapper granting pool workers access to disjoint
/// partition sub-slices of the in-memory vertex-state array (the same
/// pattern as the in-memory engine's gather).
struct StatesPtr<S>(*mut S);

// SAFETY: the pointer is only dereferenced through
// `partition_slice_mut`, whose callers guarantee each partition index
// is claimed by exactly one worker (static stride over partitions), so
// the produced `&mut` sub-slices are disjoint. `S: Send` is required
// because those `&mut` sub-slices hand the states themselves to other
// threads.
unsafe impl<S: Send> Send for StatesPtr<S> {}
// SAFETY: as above — sharing the wrapper across threads hands out
// disjoint `&mut [S]`, which is a transfer of `S`, hence `S: Send`.
unsafe impl<S: Send> Sync for StatesPtr<S> {}

impl<S> StatesPtr<S> {
    /// Produces the mutable state slice of one partition.
    ///
    /// # Safety
    ///
    /// `range` must lie inside the allocation and no other live
    /// reference (shared or unique) may overlap it.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    unsafe fn partition_slice_mut(&self, range: core::ops::Range<usize>) -> &mut [S] {
        // SAFETY: forwarded to the caller per the method contract.
        unsafe { std::slice::from_raw_parts_mut(self.0.add(range.start), range.len()) }
    }
}

/// The out-of-core streaming engine.
pub struct DiskEngine<P: EdgeProgram> {
    config: EngineConfig,
    store: Arc<StreamStore>,
    partitioner: Partitioner,
    num_edges: usize,
    vertices: VertexStorage<P::State>,
    /// Update records buffered across all scratch slices before a
    /// spill (§3.4 stream-buffer sizing).
    spill_threshold: usize,
    /// One stream buffer's byte size (`spill_threshold` in bytes);
    /// doubles as the memory envelope the parallel gather's lane
    /// buffers may claim (the idle output pools' capacity).
    stream_buffer_bytes: usize,
    /// Updates generated after the last spill stayed resident in
    /// `scratch`; gather reads those buckets in place (the
    /// generalization of §3.2 optimization 2).
    resident_updates: bool,
    /// Whether this superstep spilled updates to the per-partition
    /// files (gather then streams them back).
    spilled_updates: bool,
    /// Single-stage shuffle plan over the K streaming partitions:
    /// scatter pushes route straight into per-partition buckets, so
    /// spills and in-memory gathers read final chunks with no extra
    /// pass.
    plan: MultiStagePlan,
    /// Persistent per-device background writer threads with a
    /// recycling buffer pool. Declared before the scratch pools so the
    /// engine's drop joins the writer — draining any zero-copy spill
    /// jobs that still point into the pools — before the pools are
    /// freed.
    writer: AsyncWriter,
    /// Persistent per-device read-ahead threads with recycling buffer
    /// pools.
    reader: ReadAhead,
    /// The *filling* half of the double-buffered scatter output
    /// (§3.3): per-worker fused scatter+shuffle slices.
    scratch: ShufflePool<TargetedUpdate<P::Update>>,
    /// The *draining* half: the pool most recently handed to the
    /// writer by a zero-copy spill. Untouched until the barrier
    /// covering that spill (`spill_mark`) has been waited on.
    drain: ShufflePool<TargetedUpdate<P::Update>>,
    /// Writer barrier token covering the last zero-copy spill's
    /// borrowed runs; `drain` may be reused once `wait_until` passes
    /// it.
    spill_mark: WriteMark,
    /// Parked worker threads (`None` when single-threaded); worker 0
    /// is the calling thread.
    pool: Option<WorkerPool>,
    /// Interned stream names: submitting a write or queueing a read
    /// clones an `Arc`, never allocates.
    edge_names: Vec<Arc<str>>,
    update_names: Vec<Arc<str>>,
    /// Pooled per-worker byte buffers for the parallel gather's
    /// partition update-file loads.
    gather_bufs: Vec<Vec<u8>>,
    /// Pooled per-worker gather statistics.
    gather_counters: Vec<GatherCounters>,
    /// Pooled arena for the reference pipeline's per-spill shuffle.
    spill_arena: ShuffleArena<TargetedUpdate<P::Update>>,
    /// Whether the last superstep ran to completion. A superstep that
    /// bailed out mid-flight (I/O error) leaves queued read-ahead
    /// streams, partial update files and possibly unflushed spill jobs
    /// behind; the next superstep restores stream consistency first
    /// (see `recover()`).
    clean: bool,
    /// Pooled copy of the in-memory vertex array taken before each
    /// superstep when retries are allowed, so a transiently failed
    /// attempt — whose gather may have half-applied its updates — can
    /// be rolled back exactly. Empty when vertex state is on disk or
    /// `retry.max_attempts == 1`.
    vertex_snapshot: Vec<P::State>,
    /// Whether the current superstep's gather has started mutating
    /// vertex state. Gates on-disk retries: without a snapshot, a
    /// fault after the first gather mutation cannot be rolled back
    /// (checkpoint/resume is the recovery path there).
    gather_dirty: bool,
    /// First error `recover()` swallowed while draining the
    /// writer — the failed superstep's root cause is reported by the
    /// superstep itself, but a *recovery-time* failure must not vanish
    /// either; it is kept here until read.
    recovery_error: Option<Error>,
    /// Supersteps completed over the engine's lifetime (drives the
    /// checkpoint cadence and slot alternation).
    completed_supersteps: u64,
    /// Supersteps still to *skip* after a checkpoint restore: the
    /// driver replays its loop, and the engine answers the first k
    /// `scatter_gather` calls (and suppresses `vertex_map`s) without
    /// touching state, so the driver's own per-round bookkeeping stays
    /// aligned with the restored superstep index.
    skip_supersteps: u64,
    /// Whether the program opted into [`FrontierMode::Tracked`].
    tracked: bool,
    /// Double-buffered active-vertex bitmaps: `current` gates scatter,
    /// gather marks into `next`. Sized lazily (first tracked
    /// superstep); all storage is reused afterwards.
    frontier: FrontierPair,
    /// Whether `frontier.current` reflects the vertex states. Cleared
    /// by `vertex_map` (drivers may re-seed arbitrarily) and by
    /// `recover()`; a superstep with an invalid frontier rebuilds it
    /// from a `needs_scatter` state scan.
    frontier_valid: bool,
    /// Per partition: whether ingest grouped its edge file by source
    /// and wrote an `index.p` run-offset stream. Partitions too large
    /// to group within the stream-buffer budget stay in ingest order
    /// and always scatter densely.
    sparse_indexed: Vec<bool>,
    /// Interned index stream names.
    index_names: Vec<Arc<str>>,
    /// Pooled per-partition scatter mode of the running superstep.
    modes: Vec<u8>,
    /// Pooled byte buffer for index-stream loads.
    index_buf: Vec<u8>,
    /// Pooled merged `(byte offset, byte length)` ranges of the active
    /// vertices' edge runs in the partition being sparsely scattered.
    run_ranges: Vec<(u64, u32)>,
    /// Pooled assembly buffer the sparse ranged reads append into.
    run_buf: Vec<u8>,
    /// The sealed store manifest: written after ingest/index-build,
    /// updated at checkpoint time, and amended when the engine degrades
    /// around detected corruption (flagging streams for `scrub
    /// --repair`).
    manifest: Manifest,
    /// The `(flag, value)` config pairs the store's *previous* manifest
    /// recorded, if any — `resume_from_checkpoint` validates this run's
    /// flags against them and names the offending flag on mismatch.
    prior_config: Vec<(String, String)>,
    /// This run's layout-deciding config pairs (see [`layout_flags`]).
    config_flags: Vec<(String, String)>,
}

impl<P: EdgeProgram> DiskEngine<P> {
    /// Builds an engine from an in-memory edge list, writing the
    /// partition edge files into `store`.
    pub fn from_graph(
        store: StreamStore,
        graph: &EdgeList,
        program: &P,
        config: EngineConfig,
    ) -> Result<Self> {
        let chunk = (config.io_unit / Edge::SIZE).max(1);
        let edges = graph.edges();
        let mut offset = 0usize;
        let source = move |buf: &mut Vec<Edge>| {
            buf.clear();
            if offset >= edges.len() {
                return Ok(false);
            }
            let end = (offset + chunk).min(edges.len());
            buf.extend_from_slice(&edges[offset..end]);
            offset = end;
            Ok(true)
        };
        Self::build(
            store,
            graph.num_vertices(),
            MirrorMode::None,
            source,
            None,
            program,
            config,
        )
    }

    /// Builds an engine by streaming an on-disk edge file (the paper's
    /// input path: pre-processing reads the unordered list once and
    /// shuffles it into partition files — no sort). Shorthand for
    /// [`Self::from_ingest`] with [`MirrorMode::None`].
    pub fn from_edge_file(
        store: StreamStore,
        path: &Path,
        program: &P,
        config: EngineConfig,
    ) -> Result<Self> {
        Self::from_ingest(store, &EdgeIngest::new(path), program, config)
    }

    /// Builds an engine by streaming the edge file named by `ingest`,
    /// applying its [`MirrorMode`] to each loaded chunk before
    /// partition routing. The graph is never materialized: ingest
    /// holds one (pooled) chunk buffer, the shuffle arena, the
    /// writer's recycled spill buffers and the vertex state — memory
    /// bounded by O(io_unit × threads) + vertex state, independent of
    /// the edge count.
    pub fn from_ingest(
        store: StreamStore,
        ingest: &EdgeIngest,
        program: &P,
        config: EngineConfig,
    ) -> Result<Self> {
        let mut reader = EdgeFileReader::open(ingest.path())?;
        let num_vertices = reader.num_vertices();
        let chunk = (config.io_unit / Edge::SIZE).max(1);
        let source = move |buf: &mut Vec<Edge>| reader.read_chunk_into(chunk, buf);
        Self::build(
            store,
            num_vertices,
            ingest.mirror(),
            source,
            ingest.observer.clone(),
            program,
            config,
        )
    }

    fn build(
        store: StreamStore,
        num_vertices: usize,
        mirror: MirrorMode,
        mut next_chunk: impl FnMut(&mut Vec<Edge>) -> Result<bool>,
        observer: Option<ChunkObserver>,
        program: &P,
        config: EngineConfig,
    ) -> Result<Self> {
        let state_bytes = num_vertices * size_of::<P::State>();
        let k = config.out_of_core_partitions(state_bytes).ok_or_else(|| {
            Error::Config(format!(
                "memory budget {} cannot satisfy N/K + 5SK <= M for N = {state_bytes}, S = {}",
                config.memory_budget, config.io_unit
            ))
        })?;
        let partitioner = Partitioner::new(num_vertices, k);
        let kp = partitioner.num_partitions();
        let edge_names: Vec<Arc<str>> = (0..kp).map(|p| Arc::from(edge_stream(p))).collect();
        let update_names: Vec<Arc<str>> = (0..kp).map(|p| Arc::from(update_stream(p))).collect();
        let index_names: Vec<Arc<str>> = (0..kp).map(|p| Arc::from(index_stream(p))).collect();
        let threads = config.threads.max(1);

        // Topology-aware placement (Fig. 14): one plan drives the
        // worker pool (worker tid t owns shuffle slice t and gather
        // lane t — pinning the id pins the slice's node), and the
        // per-device reader/writer threads (whole-node sets,
        // round-robined by device). `None` on single-CPU or
        // affinity-restricted environments: everything runs unpinned.
        let pin_plan = (config.pinning != xstream_core::PinMode::Off)
            .then(|| Topology::detect().plan(config.pinning, threads))
            .flatten();

        // Pre-processing (§3.2): stream the input, shuffle each loaded
        // chunk in memory, append per-partition runs to the edge files.
        // The appends run on the engine's persistent per-device writer
        // threads so reading and shuffling the next input chunk
        // overlaps them (§3.3) — the same writer later serves every
        // superstep's spills. Depth `threads + 2` lets a zero-copy
        // spill park one borrowed run per worker slice without
        // blocking mid-submission.
        let store = Arc::new(store.with_verify(config.verify_reads));
        let writer = AsyncWriter::new_pinned(Arc::clone(&store), threads + 2, pin_plan.as_ref())?;
        // A reused store directory may carry the previous run's
        // manifest; its generation continues and its config pairs are
        // kept so `--resume` can reject changed flags *by name* before
        // this build's re-seal replaces the record.
        let (prior_generation, prior_config) = match store.read_all(MANIFEST_NAME) {
            Ok(bytes) if !bytes.is_empty() => Manifest::decode(&bytes)
                .map(|m| (m.generation, m.config))
                .unwrap_or_default(),
            _ => Default::default(),
        };
        // A declared resume intent is validated *here*, before the
        // rebuild below replaces the streams and re-seals the manifest
        // — failing later would leave the store re-laid-out under the
        // rejected flags, so the user's corrected retry would be
        // compared against the failed attempt instead of the original
        // run.
        let prior_config = if config.resume {
            check_layout_compatible(&layout_flags(&config, kp, num_vertices), &prior_config)?;
            prior_config
        } else {
            // Without a declared resume the rebuild below re-seals the
            // manifest under the current layout; keeping the stale
            // pre-rebuild pairs would make a later programmatic
            // `resume_from_checkpoint` compare against a record this
            // build just replaced (the checkpoint fingerprint still
            // guards against restoring a foreign vertex array).
            layout_flags(&config, kp, num_vertices)
        };
        // A reused store directory — a kept `--store`, or a `--resume`
        // over the one an interrupted run left behind — may still hold
        // partition streams from the previous ingest; building again
        // must *replace* them, or re-ingest would double every edge.
        // (Checkpoint streams are deliberately left alone: resume reads
        // them after the rebuild.)
        for name in edge_names
            .iter()
            .chain(update_names.iter())
            .chain(index_names.iter())
        {
            store.truncate(name)?;
        }
        let mut num_edges = 0usize;
        {
            let mut arena: ShuffleArena<Edge> = ShuffleArena::new();
            let mut chunk: Vec<Edge> = Vec::new();
            while next_chunk(&mut chunk)? {
                // On-the-fly expansion (undirected/bidirectional
                // doubling) happens here, per chunk, before partition
                // routing — the streaming replacement for the
                // `EdgeList::to_*` whole-graph copies.
                mirror.mirror_in_place(&mut chunk);
                for e in &chunk {
                    xstream_graph::transform::validate_edge(e, num_vertices)?;
                }
                if let Some(obs) = &observer {
                    obs(&chunk);
                }
                num_edges += chunk.len();
                arena.shuffle(&chunk, kp, |e| partitioner.partition_of(e.src));
                for (p, run) in arena.iter_chunks() {
                    let mut buf = writer.acquire();
                    buf.extend_from_slice(records_as_bytes(run));
                    writer.submit(Arc::clone(&edge_names[p]), buf)?;
                }
            }
            writer.flush()?;
        }

        let usz = size_of::<TargetedUpdate<P::Update>>();
        // The stream buffer must admit at least one I/O unit per
        // partition (§3.4 sizing: chunk array of S*K bytes).
        let buffer_bytes = (config.memory_budget / 4)
            .max(config.io_unit.saturating_mul(kp))
            .max(1 << 20);
        let spill_threshold = (buffer_bytes / usz).max(1024);

        // Frontier-tracked programs get sparse-scatter indexes: group
        // each partition's edge file by source vertex (one in-memory
        // sort per partition — a second, bounded streaming pass) and
        // write the per-vertex run offsets next to it. Partitions
        // whose edge file exceeds the stream-buffer budget keep their
        // ingest order and always scatter densely; a frontier can
        // still *skip* them when they have no active sources.
        let tracked = program.frontier_mode() == FrontierMode::Tracked;
        let mut sparse_indexed = vec![false; kp];
        if tracked {
            // One decoded-edge buffer reserved once for the largest
            // eligible partition, filled through a small chunk buffer —
            // never the raw bytes and the decoded edges side by side,
            // so the pass stays well under one partition-file of
            // cumulative allocation (the out-of-core ingest bound).
            let eligible =
                |blen: usize| blen <= buffer_bytes && blen / Edge::SIZE <= u32::MAX as usize;
            let max_records = (0..kp)
                .map(|p| store.len(&edge_names[p]) as usize)
                .filter(|&b| eligible(b))
                .max()
                .unwrap_or(0)
                / Edge::SIZE;
            let mut edges: Vec<Edge> = Vec::with_capacity(max_records);
            let chunk_cap = (config.io_unit / Edge::SIZE).max(1) * Edge::SIZE;
            let mut chunk: Vec<u8> = Vec::with_capacity(chunk_cap);
            let mut offsets: Vec<u32> = Vec::new();
            for p in 0..kp {
                let blen = store.len(&edge_names[p]) as usize;
                if !eligible(blen) {
                    continue;
                }
                edges.clear();
                let mut off = 0u64;
                while (off as usize) < blen {
                    chunk.clear();
                    let want = chunk_cap.min(blen - off as usize);
                    let n = store.read_range_into(&edge_names[p], off, want, &mut chunk)?;
                    edges.extend(RecordIter::<Edge>::new(&chunk[..n]));
                    off += n as u64;
                }
                edges.sort_unstable_by_key(|e| e.src);
                store.truncate(&edge_names[p])?;
                store.append(&edge_names[p], records_as_bytes(&edges))?;
                let range = partitioner.range(p);
                offsets.clear();
                offsets.push(0);
                let mut i = 0u32;
                for v in range {
                    while (i as usize) < edges.len() && edges[i as usize].src as usize <= v {
                        i += 1;
                    }
                    offsets.push(i);
                }
                store.append(&index_names[p], records_as_bytes(&offsets))?;
                sparse_indexed[p] = true;
            }
        }

        // Seal the store: persist a per-chunk checksum sidecar for
        // every durable stream this build wrote, and record them all —
        // with the graph/config fingerprint — in an atomically
        // replaced MANIFEST. Checkpoint slots survive the rebuild
        // (resume reads them right after), so their sidecars are
        // re-sealed from the reloaded sums and carried into the new
        // manifest too.
        let config_flags = layout_flags(&config, kp, num_vertices);
        let mut manifest = Manifest {
            generation: prior_generation + 1,
            fingerprint: run_fingerprint::<P>(num_vertices, num_edges, &config_flags),
            config: config_flags.clone(),
            entries: Vec::new(),
        };
        let durable = (0..kp)
            .map(edge_stream)
            .chain((0..kp).filter(|&p| sparse_indexed[p]).map(index_stream))
            .chain((0..2).map(|s| format!("checkpoint.{s}")));
        for name in durable {
            let len = store.len(&name);
            if len == 0 && name.starts_with("checkpoint.") {
                continue;
            }
            let sealed = store.seal_sums(&name)?;
            manifest.upsert(StreamEntry {
                role: StreamRole::of_stream(&name),
                name,
                len,
                sum_crc: sealed.unwrap_or(0),
                has_sums: sealed.is_some(),
                needs_rebuild: false,
            });
        }
        store.write_atomic(MANIFEST_NAME, &manifest.encode())?;

        let sparse_any = sparse_indexed.iter().any(|&b| b);
        let max_index_bytes = (0..kp)
            .filter(|&p| sparse_indexed[p])
            .map(|p| (partitioner.range(p).len() + 1) * 4)
            .max()
            .unwrap_or(0);
        let max_range_len = (0..kp)
            .filter(|&p| sparse_indexed[p])
            .map(|p| partitioner.range(p).len())
            .max()
            .unwrap_or(0);
        let run_io_cap = (config.io_unit / Edge::SIZE).max(1) * Edge::SIZE;

        let in_memory_vertices =
            config.keep_vertices_in_memory && state_bytes <= config.memory_budget / 2;
        let vertices = VertexStorage::initialize(&store, &partitioner, in_memory_vertices, |v| {
            program.init(v)
        })?;

        // A planned single-threaded run still holds a 0-worker pool so
        // the sole scatter/gather thread gets the planned placement —
        // and the restore-on-drop — like any other worker 0.
        let pool = (threads > 1 || pin_plan.is_some())
            .then(|| WorkerPool::new_pinned(threads - 1, pin_plan.as_ref()));
        let spill_mark = writer.submitted();

        Ok(Self {
            config,
            partitioner,
            num_edges,
            vertices,
            spill_threshold,
            stream_buffer_bytes: buffer_bytes,
            resident_updates: false,
            spilled_updates: false,
            plan: MultiStagePlan::new(kp, kp),
            writer,
            // Job depth 2 per device: the current stream plus the next
            // one queued for cross-partition read-ahead (§3.3).
            reader: ReadAhead::striped_pinned(2, store.num_devices(), pin_plan.as_ref()),
            store,
            scratch: ShufflePool::new(threads),
            drain: ShufflePool::new(threads),
            spill_mark,
            pool,
            edge_names,
            update_names,
            gather_bufs: vec![Vec::new(); threads],
            gather_counters: vec![GatherCounters::default(); threads],
            spill_arena: ShuffleArena::new(),
            clean: true,
            vertex_snapshot: Vec::new(),
            gather_dirty: false,
            recovery_error: None,
            completed_supersteps: 0,
            skip_supersteps: 0,
            tracked,
            frontier: FrontierPair::new(),
            frontier_valid: false,
            sparse_indexed,
            index_names,
            modes: vec![MODE_DENSE; kp],
            // Sparse-scatter pools are warmed here, at build time:
            // sparse mode typically kicks in *late* (once the frontier
            // has collapsed), and a first-use allocation then would
            // break the steady-state alloc-free guarantee.
            index_buf: Vec::with_capacity(if sparse_any { max_index_bytes } else { 0 }),
            run_ranges: Vec::with_capacity(if sparse_any { max_range_len } else { 0 }),
            run_buf: Vec::with_capacity(if sparse_any { 2 * run_io_cap } else { 0 }),
            manifest,
            prior_config,
            config_flags,
        })
    }

    /// Restores stream consistency after a superstep abandoned
    /// mid-flight: discards queued/in-flight read-ahead streams,
    /// drains the writer (releasing any zero-copy spill runs still
    /// borrowing the scratch pools), and truncates the partially
    /// written update files so a retried superstep does not gather
    /// stale updates. A drain-time writer error is usually the same
    /// root cause the failed superstep already reported — but it is
    /// *kept* in [`Self::last_recovery_error`], never dropped, so a
    /// later retry's symptom can never shadow it. Vertex state is
    /// whatever the failed superstep left; the retry loop restores it
    /// from its pre-superstep snapshot (in-memory state), and
    /// checkpoint/resume covers the on-disk case — this function
    /// guarantees no cross-stream corruption and no deadlock on retry.
    fn recover(&mut self) -> Result<()> {
        self.reader.reset();
        if let Err(e) = self.writer.flush() {
            // Keep the *first* swallowed error: it is the closest
            // thing to a root cause this engine will ever see.
            self.recovery_error.get_or_insert(e);
        }
        self.spill_mark = self.writer.submitted();
        for name in &self.update_names {
            self.store.truncate(name)?;
        }
        // The failed attempt's frontier may describe states a rollback
        // is about to rewrite; force the next attempt to rebuild from
        // the (restored) states.
        self.frontier_valid = false;
        self.clean = true;
        Ok(())
    }

    /// The first error `recover()` observed while draining the
    /// writer after a failed superstep, if any — the root cause that
    /// would previously have been silently discarded. Cleared by
    /// [`Self::take_recovery_error`].
    pub fn last_recovery_error(&self) -> Option<&Error> {
        self.recovery_error.as_ref()
    }

    /// Takes (and clears) the recovery-time writer error, if any.
    pub fn take_recovery_error(&mut self) -> Option<Error> {
        self.recovery_error.take()
    }

    /// Fingerprint binding checkpoints to this exact (graph shape,
    /// program, state layout, layout-deciding config) combination — a
    /// frame from a different graph, program, build *or flag set* is
    /// rejected at resume (the manifest's config pairs additionally
    /// name the offending flag).
    fn checkpoint_fingerprint(&self) -> u64 {
        run_fingerprint::<P>(
            self.partitioner.num_vertices(),
            self.num_edges,
            &self.config_flags,
        )
    }

    /// The sealed store manifest (exposed for `scrub` and tests).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Atomically replaces the on-disk manifest with the in-memory one.
    fn write_manifest(&self) -> Result<()> {
        self.store
            .write_atomic(MANIFEST_NAME, &self.manifest.encode())
    }

    /// Records in the manifest that partition `p`'s sparse-scatter
    /// index is corrupt and must be rebuilt (`scrub --repair` does).
    /// Best-effort: a manifest-write failure is reported, not fatal —
    /// the run already degraded to dense scatter and stays correct.
    fn flag_index_rebuild(&mut self, p: usize) {
        let name = index_stream(p);
        match self.manifest.entry_mut(&name) {
            Some(e) => e.needs_rebuild = true,
            None => {
                let len = self.store.len(&name);
                self.manifest.upsert(StreamEntry {
                    name: name.clone(),
                    role: StreamRole::Index,
                    len,
                    sum_crc: 0,
                    has_sums: false,
                    needs_rebuild: true,
                });
            }
        }
        if let Err(e) = self.write_manifest() {
            eprintln!("warning: could not flag {name} for rebuild in the manifest: {e}");
        }
    }

    /// Supersteps this engine has completed (restored ones included
    /// after a [`Self::resume_from_checkpoint`]).
    pub fn completed_supersteps(&self) -> u64 {
        self.completed_supersteps
    }

    /// Persists the current vertex state as a checksummed checkpoint
    /// frame ([`crate::checkpoint`]) via a crash-atomic
    /// write-temp-then-rename, alternating between two slots so the
    /// previous checkpoint survives a crash during this write.
    ///
    /// Driven automatically by
    /// [`EngineConfig::checkpoint_every`](xstream_core::EngineConfig);
    /// public so callers with their own cadence (e.g. time-based) can
    /// checkpoint explicitly between supersteps.
    pub fn write_checkpoint(&mut self) -> Result<()> {
        let states = self.vertices.collect_all(&self.store, &self.partitioner)?;
        // A checkpoint is taken post-gather, so `frontier.current`
        // (already advanced) is exactly the active set the *next*
        // superstep scatters — persisting it lets a mid-traversal
        // resume skip the rebuild scan and restore the frontier
        // bit-for-bit.
        let aux = if self.tracked && self.frontier_valid {
            self.frontier.current.to_bytes()
        } else {
            Vec::new()
        };
        let frame = crate::checkpoint::encode_frame(
            self.checkpoint_fingerprint(),
            self.completed_supersteps,
            &states,
            &aux,
        );
        let slot = self.completed_supersteps % 2;
        let name = format!("checkpoint.{slot}");
        self.store.write_atomic(&name, &frame)?;
        // Seal the slot's checksum sidecar and record it in the
        // manifest, so a later scrub (or resume after a crash) can
        // tell rot from a merely foreign frame.
        let sealed = self.store.seal_sums(&name)?;
        self.manifest.upsert(StreamEntry {
            name,
            role: StreamRole::Checkpoint,
            len: frame.len() as u64,
            sum_crc: sealed.unwrap_or(0),
            has_sums: sealed.is_some(),
            needs_rebuild: false,
        });
        self.write_manifest()
    }

    /// Restores vertex state from the newest valid checkpoint in the
    /// store, if any, and arranges for the already-completed supersteps
    /// to be skipped (reported as instant no-op iterations) by the
    /// driving loop.
    ///
    /// Both slots are read and validated — magic, version, CRC over the
    /// whole frame, graph/program fingerprint, record count; a torn or
    /// foreign frame in one slot silently falls back to the other, and
    /// two invalid slots mean a fresh run. Returns the superstep index
    /// the engine resumed at (`None` when starting fresh).
    pub fn resume_from_checkpoint(&mut self) -> Result<Option<u64>> {
        // Refuse to resume under different layout-deciding flags: the
        // store's previous manifest recorded the pairs the interrupted
        // run used, so a mismatch names the offending flag. (A caller
        // that declared `EngineConfig::resume` was already checked in
        // `new`, before the store rebuild; this re-check covers
        // programmatic callers that skipped the declaration.)
        check_layout_compatible(&self.config_flags, &self.prior_config)?;
        let fp = self.checkpoint_fingerprint();
        let count = self.partitioner.num_vertices();
        let mut best: Option<(u64, Vec<P::State>, Vec<u8>)> = None;
        let mut bad_slots: Vec<u64> = Vec::new();
        for slot in 0..2u64 {
            let name = format!("checkpoint.{slot}");
            // A rotted slot (checksum sidecar mismatch) falls back to
            // the other slot exactly like a torn frame would — but is
            // recorded, so scrub can quarantine it.
            let bytes = match self.store.read_all(&name) {
                Ok(b) => b,
                Err(Error::Corrupt { .. }) => {
                    bad_slots.push(slot);
                    continue;
                }
                Err(e) => return Err(e),
            };
            match crate::checkpoint::decode_frame::<P::State>(&bytes, fp, count) {
                Some((step, states, aux)) => {
                    if best.as_ref().is_none_or(|(b, _, _)| step > *b) {
                        best = Some((step, states, aux));
                    }
                }
                None => {
                    // Distinguish rot (structurally invalid: record the
                    // bad slot) from a merely foreign frame (valid CRC,
                    // different graph/config: plain fresh-run fallback).
                    if !bytes.is_empty() && !crate::checkpoint::frame_is_valid(&bytes) {
                        bad_slots.push(slot);
                    }
                }
            }
        }
        for &slot in &bad_slots {
            let name = format!("checkpoint.{slot}");
            eprintln!("warning: checkpoint slot {slot} is corrupt; falling back");
            match self.manifest.entry_mut(&name) {
                Some(e) => e.needs_rebuild = true,
                None => {
                    let len = self.store.len(&name);
                    self.manifest.upsert(StreamEntry {
                        name,
                        role: StreamRole::Checkpoint,
                        len,
                        sum_crc: 0,
                        has_sums: false,
                        needs_rebuild: true,
                    });
                }
            }
        }
        if !bad_slots.is_empty() {
            if let Err(e) = self.write_manifest() {
                eprintln!("warning: could not record bad checkpoint slots: {e}");
            }
        }
        let Some((step, states, aux)) = best else {
            return Ok(None);
        };
        if let Some(mem) = self.vertices.in_memory_mut() {
            mem.copy_from_slice(&states);
        } else {
            for p in self.partitioner.iter() {
                let range = self.partitioner.range(p);
                self.vertices
                    .store_back(&self.store, &self.partitioner, p, &states[range])?;
            }
        }
        // Restore the checkpointed active set, if the frame carried
        // one. A frame without it (dense program, or a checkpoint from
        // before the program opted in) just leaves the frontier
        // invalid — the first real superstep rebuilds it from a
        // `needs_scatter` scan, which the frontier contract guarantees
        // yields the same set.
        if self.tracked && !aux.is_empty() {
            self.frontier.ensure(&self.partitioner);
            self.frontier_valid = self.frontier.current.load_bytes(&aux, &self.partitioner);
        }
        self.completed_supersteps = step;
        self.skip_supersteps = step;
        Ok(Some(step))
    }

    /// The partitioner in use (exposed for experiments).
    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    /// The underlying stream store (for I/O accounting inspection).
    pub fn store(&self) -> &StreamStore {
        &self.store
    }

    /// Fallible scatter-gather superstep; the [`Engine`] trait method
    /// panics on I/O errors, this variant reports them.
    ///
    /// Runs `superstep_once` under the configured
    /// [`RetryPolicy`](xstream_core::RetryPolicy): a *transient* failure
    /// ([`Error::is_transient`]) triggers stream recovery, a rollback of
    /// the in-memory vertex state to its pre-superstep snapshot, a
    /// bounded exponential backoff, and a re-run. Permanent failures
    /// (`ENOSPC`, permission, config, malformed input) fail fast with
    /// the engine left consistent for a later retry or resume. When the
    /// budget runs out the last error is wrapped in
    /// [`Error::Exhausted`]. Attempts beyond the first are surfaced in
    /// [`IterationStats::io_retries`].
    pub fn try_scatter_gather(&mut self, program: &P) -> Result<IterationStats> {
        let policy = self.config.retry;
        let max_attempts = policy.max_attempts.max(1);
        // Snapshot the in-memory vertex array so a failed attempt can
        // be rolled back exactly. Pooled: the buffer is retained across
        // supersteps, so the steady state stays allocation-free.
        let can_snapshot = max_attempts > 1 && self.vertices.in_memory_mut().is_some();
        if can_snapshot {
            let states = self.vertices.in_memory_mut().expect("checked above");
            self.vertex_snapshot.clear();
            self.vertex_snapshot.extend_from_slice(states);
        }
        let mut attempts = 0u32;
        let verify0 = self.store.accounting().snapshot();
        loop {
            attempts += 1;
            match self.superstep_once(program) {
                Ok(mut stats) => {
                    stats.io_retries = (attempts - 1) as u64;
                    // Verification counters span the whole loop, so a
                    // corruption detected by a *failed* attempt (e.g.
                    // the index degrade below) still shows up in the
                    // successful iteration's stats.
                    let v1 = self.store.accounting().snapshot();
                    stats.chunks_verified =
                        v1.chunks_verified.saturating_sub(verify0.chunks_verified);
                    stats.corruptions_detected = v1
                        .corruptions_detected
                        .saturating_sub(verify0.corruptions_detected);
                    return Ok(stats);
                }
                Err(e) => {
                    // Whatever happens next, leave the streams usable.
                    self.recover()?;
                    // A corrupt sparse-scatter *index* is survivable:
                    // the edge stream it indexes is separately
                    // checksummed and intact, so the partition drops to
                    // dense scatter for the rest of the run, the
                    // manifest flags the index for `scrub --repair`,
                    // and the superstep re-runs — without consuming the
                    // transient-retry budget (rot is not transient; the
                    // degrade removes the read that failed). Bounded:
                    // each partition can degrade at most once.
                    if let Error::Corrupt { stream, .. } = &e {
                        if let Some(p) = stream
                            .strip_prefix("index.")
                            .and_then(|s| s.parse::<usize>().ok())
                        {
                            if self.sparse_indexed.get(p).copied().unwrap_or(false) {
                                let rolled_back = if can_snapshot {
                                    let states =
                                        self.vertices.in_memory_mut().expect("checked above");
                                    states.copy_from_slice(&self.vertex_snapshot);
                                    true
                                } else {
                                    // Index reads happen during scatter,
                                    // before gather mutates state — so a
                                    // clean `gather_dirty` means nothing
                                    // to roll back.
                                    !self.gather_dirty
                                };
                                if rolled_back {
                                    eprintln!(
                                        "warning: {e}; partition {p} degrades to dense scatter"
                                    );
                                    self.sparse_indexed[p] = false;
                                    self.flag_index_rebuild(p);
                                    attempts -= 1;
                                    continue;
                                }
                            }
                        }
                    }
                    if !e.is_transient() {
                        return Err(e);
                    }
                    if attempts >= max_attempts {
                        return Err(Error::Exhausted {
                            attempts,
                            source: Box::new(e),
                        });
                    }
                    if can_snapshot {
                        let states = self.vertices.in_memory_mut().expect("checked above");
                        states.copy_from_slice(&self.vertex_snapshot);
                    } else if self.gather_dirty {
                        // On-disk vertex state and gather already
                        // mutated some partitions: a blind re-run would
                        // double-apply updates. Checkpoint/resume is
                        // the recovery path for this configuration.
                        return Err(e);
                    }
                    // Bounded exponential backoff: base * 2^(attempt-1),
                    // capped at one second.
                    let delay = policy
                        .backoff
                        .saturating_mul(1u32 << (attempts - 1).min(6))
                        .min(std::time::Duration::from_secs(1));
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }

    /// One scatter-gather attempt; the retry wrapper above decides what
    /// a failure means.
    fn superstep_once(&mut self, program: &P) -> Result<IterationStats> {
        if !self.clean {
            self.recover()?;
        }
        self.clean = false;
        self.gather_dirty = false;
        let alloc_before = alloc_stats::snapshot();
        let mut stats = IterationStats::default();
        let kp = self.partitioner.num_partitions();
        let snap0 = self.store.accounting().snapshot();
        // Time the superstep thread spends *blocked* on stream I/O:
        // waiting for a read chunk, for writer backpressure, or for a
        // spill/drain barrier. Compute fully overlapped with I/O does
        // not count (§3.3's measure of overlap quality).
        let mut blocked_ns = 0u64;

        // ---- Frontier rebuild + per-partition mode decision ----
        let use_frontier = self.tracked && self.config.frontier_skip;
        if use_frontier {
            if !self.frontier_valid {
                // Rebuild from a `needs_scatter` state scan (`ensure`
                // sizes the bitmaps on first use and clears them; both
                // are pure memsets once sized).
                self.frontier.ensure(&self.partitioner);
                for p in self.partitioner.iter() {
                    let base = self.partitioner.range(p).start;
                    let states = self
                        .vertices
                        .load_scatter(&self.store, &self.partitioner, p)?;
                    for (i, s) in states.iter().enumerate() {
                        if program.needs_scatter(s) {
                            self.frontier.current.mark((base + i) as VertexId, p);
                        }
                    }
                }
                self.frontier_valid = true;
            }
            // A failed attempt's partial gather may have left marks.
            self.frontier.next.clear();
            stats.frontier_density = self.frontier.current.density();
            // Decide every partition's mode up front so the strict
            // in-order read-ahead schedule below queues *only* the
            // partitions that stream densely — skipped and sparse
            // partitions cost the prefetch threads zero I/O.
            for p in 0..kp {
                self.modes[p] = MODE_DENSE;
                if self.frontier.current.active_in(p) == 0 {
                    self.modes[p] = MODE_SKIP;
                    continue;
                }
                if !self.sparse_indexed[p] {
                    continue;
                }
                // Sum the active vertices' run lengths from the index,
                // bailing out as soon as the running total proves the
                // partition dense (the threshold predicate is monotone
                // in the active edge count).
                if let Err(e) = self
                    .store
                    .read_all_into(&self.index_names[p], &mut self.index_buf)
                {
                    if !matches!(e, Error::Corrupt { .. }) {
                        return Err(e);
                    }
                    // Graceful degradation: a rotted index must not
                    // kill the run. The edge stream is separately
                    // checksummed and intact, so this partition
                    // scatters densely from now on and the manifest
                    // flags the index for `scrub --repair`.
                    eprintln!("warning: {e}; partition {p} degrades to dense scatter");
                    self.sparse_indexed[p] = false;
                    self.flag_index_rebuild(p);
                    continue;
                }
                let range = self.partitioner.range(p);
                let total = index_at(&self.index_buf, range.len()) as usize;
                if total == 0 {
                    self.modes[p] = MODE_SKIP;
                    continue;
                }
                let base = range.start;
                let index_buf = &self.index_buf;
                let config = &self.config;
                let mut active_edges = 0usize;
                let mut sparse = config.wants_sparse_scatter(0, total);
                self.frontier.current.for_each_active_in(range, |v| {
                    let lv = v as usize - base;
                    active_edges +=
                        (index_at(index_buf, lv + 1) - index_at(index_buf, lv)) as usize;
                    sparse = config.wants_sparse_scatter(active_edges, total);
                    sparse
                });
                if sparse {
                    self.modes[p] = MODE_SPARSE;
                }
            }
        } else {
            stats.frontier_density = 1.0;
            self.modes.iter_mut().for_each(|m| *m = MODE_DENSE);
        }

        // ---- Merged scatter + fused shuffle (Fig. 6) ----
        let t_scatter = Instant::now();
        // Rearm both output pools; each slice is rearmed on the worker
        // that owns it, so any bucket growth is first-touched locally.
        // (`drain` is reusable here: the previous superstep's flush —
        // or `recover` — covered every borrowed run.)
        self.scratch
            .begin_first_touch(self.plan, self.pool.as_ref());
        self.drain.begin(self.plan);
        self.resident_updates = false;
        self.spilled_updates = false;
        {
            let store = &self.store;
            let partitioner = &self.partitioner;
            let vertices = &mut self.vertices;
            let reader = &mut self.reader;
            let writer = &self.writer;
            let scratch = &mut self.scratch;
            let drain = &mut self.drain;
            let spill_mark = &mut self.spill_mark;
            let pool = self.pool.as_ref();
            let plan = self.plan;
            let edge_names = &self.edge_names;
            let update_names = &self.update_names;
            let index_names = &self.index_names;
            let modes = &self.modes;
            let frontier = &self.frontier.current;
            let index_buf = &mut self.index_buf;
            let run_ranges = &mut self.run_ranges;
            let run_buf = &mut self.run_buf;
            let spill_threshold = self.spill_threshold;
            // Sparse ranged reads are merged and flushed in I/O-unit
            // portions, rounded to whole edge records so no flush ever
            // splits an edge.
            let io_cap = (self.config.io_unit / Edge::SIZE).max(1) * Edge::SIZE;

            // Queue the first densely-streamed partition; each dense
            // partition then queues the next dense one before
            // consuming its own chunks (§3.3 read-ahead across
            // partitions, restricted to the ones that actually
            // stream).
            let mut dense_iter = (0..kp).filter(|&p| modes[p] == MODE_DENSE);
            let mut queued = dense_iter.next();
            if let Some(first) = queued {
                reader.begin(store.read_source(&edge_names[first], Edge::SIZE)?)?;
            }
            for s in partitioner.iter() {
                match modes[s] {
                    MODE_SKIP => {
                        // No active sources: this partition costs zero
                        // I/O this superstep.
                        stats.partitions_skipped += 1;
                        continue;
                    }
                    MODE_SPARSE => {
                        stats.partitions_sparse += 1;
                        let states = vertices.load_scatter(store, partitioner, s)?;
                        let range = partitioner.range(s);
                        let base = range.start;
                        // Re-load the run-offset index (the decision
                        // pass's pooled buffer has been reused since)
                        // and merge the active vertices' edge runs
                        // into ranged reads, split at `io_cap` so the
                        // assembly buffer stays bounded.
                        store.read_all_into(&index_names[s], index_buf)?;
                        run_ranges.clear();
                        frontier.for_each_active_in(range, |v| {
                            let lv = v as usize - base;
                            let mut lo = index_at(index_buf, lv) as u64 * Edge::SIZE as u64;
                            let hi = index_at(index_buf, lv + 1) as u64 * Edge::SIZE as u64;
                            while lo < hi {
                                if let Some((o, l)) = run_ranges.last_mut() {
                                    if *o + *l as u64 == lo && (*l as usize) < io_cap {
                                        let take = (hi - lo).min((io_cap - *l as usize) as u64);
                                        *l += take as u32;
                                        lo += take;
                                        continue;
                                    }
                                }
                                let take = (hi - lo).min(io_cap as u64);
                                run_ranges.push((lo, take as u32));
                                lo += take;
                            }
                            true
                        });
                        for &(off, len) in run_ranges.iter() {
                            let t_io = Instant::now();
                            store.read_range_into(&edge_names[s], off, len as usize, run_buf)?;
                            blocked_ns += t_io.elapsed().as_nanos() as u64;
                            if run_buf.len() < io_cap {
                                continue;
                            }
                            stats.edges_streamed += (run_buf.len() / Edge::SIZE) as u64;
                            scatter_chunk_pooled(
                                pool,
                                scratch,
                                program,
                                states,
                                base,
                                run_buf.as_slice(),
                                partitioner,
                            );
                            run_buf.clear();
                            if spill_if_full(
                                writer,
                                update_names,
                                scratch,
                                drain,
                                spill_mark,
                                plan,
                                kp,
                                spill_threshold,
                                &mut stats,
                                &mut blocked_ns,
                            )? {
                                self.spilled_updates = true;
                            }
                        }
                        if !run_buf.is_empty() {
                            stats.edges_streamed += (run_buf.len() / Edge::SIZE) as u64;
                            scatter_chunk_pooled(
                                pool,
                                scratch,
                                program,
                                states,
                                base,
                                run_buf.as_slice(),
                                partitioner,
                            );
                            run_buf.clear();
                            if spill_if_full(
                                writer,
                                update_names,
                                scratch,
                                drain,
                                spill_mark,
                                plan,
                                kp,
                                spill_threshold,
                                &mut stats,
                                &mut blocked_ns,
                            )? {
                                self.spilled_updates = true;
                            }
                        }
                    }
                    _ => {
                        debug_assert_eq!(queued, Some(s), "dense queue out of order");
                        queued = dense_iter.next();
                        if let Some(n) = queued {
                            // §3.3 read-ahead across partitions: the
                            // reader thread rolls into the next live
                            // edge file while this partition still
                            // computes.
                            reader.begin(store.read_source(&edge_names[n], Edge::SIZE)?)?;
                        }
                        let states = vertices.load_scatter(store, partitioner, s)?;
                        let base = partitioner.range(s).start;
                        loop {
                            let t_io = Instant::now();
                            let chunk = reader.next_chunk()?;
                            blocked_ns += t_io.elapsed().as_nanos() as u64;
                            let Some(bytes) = chunk else {
                                break;
                            };
                            stats.edges_streamed += (bytes.len() / Edge::SIZE) as u64;
                            // §4.3 layering: the loaded chunk is
                            // processed with the in-memory engine's
                            // parallel primitives — a parallel fused
                            // scatter over sub-slices of the chunk,
                            // one pooled scratch slice per worker.
                            scatter_chunk_pooled(
                                pool,
                                scratch,
                                program,
                                states,
                                base,
                                bytes,
                                partitioner,
                            );
                            if spill_if_full(
                                writer,
                                update_names,
                                scratch,
                                drain,
                                spill_mark,
                                plan,
                                kp,
                                spill_threshold,
                                &mut stats,
                                &mut blocked_ns,
                            )? {
                                self.spilled_updates = true;
                            }
                        }
                    }
                }
            }
            let tail = scratch.total_len();
            stats.updates_generated += tail as u64;
            if tail > 0 {
                if self.spilled_updates || self.config.in_memory_updates {
                    // Updates since the last spill stay resident: the
                    // buffer exists either way, so gather reads it in
                    // place — §3.2 optimization 2, generalized to the
                    // tail of a spilling superstep.
                    for i in 0..scratch.num_slices() {
                        scratch
                            .slice_mut(i)
                            .finish(|u| partitioner.partition_of(u.target));
                    }
                    self.resident_updates = true;
                } else {
                    // Forced-spill configuration with everything still
                    // buffered: the whole output goes to disk.
                    spill_borrowed(writer, update_names, scratch, kp, &mut blocked_ns)?;
                    self.spilled_updates = true;
                }
            }
            // The gather phase must observe every update: drain the
            // writer before leaving the scatter phase. (This also
            // releases every borrowed bucket run.)
            let t_io = Instant::now();
            writer.flush()?;
            *spill_mark = writer.submitted();
            blocked_ns += t_io.elapsed().as_nanos() as u64;
        }
        stats.scatter_ns = t_scatter.elapsed().as_nanos() as u64;

        // ---- Gather ----
        let t_gather = Instant::now();
        let lanes = self.config.effective_gather_threads().min(kp.max(1));
        let mut parallel =
            lanes > 1 && kp > 1 && self.pool.is_some() && self.vertices.in_memory_mut().is_some();
        if parallel && self.spilled_updates {
            // Memory gate: each gather lane holds one whole partition
            // update file at a time, and the two scatter output pools
            // (~one stream buffer each) sit idle during gather — their
            // envelope is the budget the lane buffers may claim. A
            // partition skew that would bust it (update files are
            // unbounded in a genuinely out-of-core run) falls back to
            // the serial chunk-streaming gather, which is bounded by
            // construction.
            let max_file = self
                .update_names
                .iter()
                .map(|n| self.store.len(n))
                .max()
                .unwrap_or(0);
            parallel = (max_file as usize).saturating_mul(lanes) <= 2 * self.stream_buffer_bytes;
        }
        if parallel {
            self.gather_parallel(program, &mut stats, lanes, &mut blocked_ns, use_frontier)?;
        } else {
            self.gather_serial(program, &mut stats, &mut blocked_ns, use_frontier)?;
        }
        stats.gather_ns = t_gather.elapsed().as_nanos() as u64;
        if use_frontier {
            // Promote the set gather just marked: it is exactly the
            // next superstep's scatter frontier (the program contract
            // behind [`FrontierMode::Tracked`]).
            self.frontier.advance();
        }

        // Adaptive capacity equalization over both ping-pong pools
        // (safe here: the pre-gather flush released every zero-copy
        // borrowed run, and gather is done reading the resident tail).
        // Each pool's budget tracks its own observed per-slice
        // high-water marks across spills, mirrors them on the owning
        // (pinned) workers and shrinks skew-era capacity back once the
        // decaying envelope moves on.
        let rep_a = self.scratch.equalize_capacity_adaptive(self.pool.as_ref());
        let rep_b = self.drain.equalize_capacity_adaptive(self.pool.as_ref());
        stats.shuffle_budget = rep_a.budget.max(rep_b.budget) as u64;
        stats.shuffle_capacity = (rep_a.total_capacity + rep_b.total_capacity) as u64;
        stats.shuffle_high_water = (rep_a.high_water + rep_b.high_water) as u64;

        let snap1 = self.store.accounting().snapshot();
        stats.bytes_read = snap1.bytes_read() - snap0.bytes_read();
        stats.bytes_written = snap1.bytes_written() - snap0.bytes_written();
        stats.chunks_verified = snap1.chunks_verified.saturating_sub(snap0.chunks_verified);
        stats.corruptions_detected = snap1
            .corruptions_detected
            .saturating_sub(snap0.corruptions_detected);
        stats.streaming_ns = blocked_ns;
        stats.mem_refs =
            stats.edges_streamed * 2 + stats.updates_generated + stats.updates_applied * 2;
        let alloc = alloc_before.delta(&alloc_stats::snapshot());
        stats.alloc_count = alloc.count;
        stats.alloc_bytes = alloc.bytes;
        self.clean = true;
        Ok(stats)
    }

    /// Serial gather: one partition at a time on the superstep thread
    /// (the paper's base design), streaming spilled update files
    /// through the read-ahead threads with cross-partition prefetch,
    /// and applying the resident tail straight from the scratch
    /// buckets. Handles every storage combination, including on-disk
    /// vertex state.
    fn gather_serial(
        &mut self,
        program: &P,
        stats: &mut IterationStats,
        blocked_ns: &mut u64,
        mark_next: bool,
    ) -> Result<()> {
        let kp = self.partitioner.num_partitions();
        let store = &self.store;
        let partitioner = &self.partitioner;
        let vertices = &mut self.vertices;
        let reader = &mut self.reader;
        let scratch = &self.scratch;
        let update_names = &self.update_names;
        let next_frontier = mark_next.then_some(&self.frontier.next);
        let usz = size_of::<TargetedUpdate<P::Update>>();
        let from_files = self.spilled_updates;
        let resident = self.resident_updates;
        if !from_files && !resident {
            return Ok(());
        }
        // From here on vertex state may have been mutated by a partial
        // gather; a retry without a snapshot can no longer blindly
        // re-run (updates would double-apply).
        self.gather_dirty = true;

        if from_files {
            reader.begin(store.read_source(&update_names[0], usz)?)?;
        }
        for p in partitioner.iter() {
            if from_files && p + 1 < kp {
                reader.begin(store.read_source(&update_names[p + 1], usz)?)?;
            }
            let base = partitioner.range(p).start;
            let mut applied = 0u64;
            let mut changed_vertices = 0u64;
            {
                let reader = &mut *reader;
                let blocked = &mut *blocked_ns;
                vertices.update_partition(store, partitioner, p, |states| {
                    let mut changed = false;
                    if from_files {
                        loop {
                            let t_io = Instant::now();
                            let chunk = reader.next_chunk()?;
                            *blocked += t_io.elapsed().as_nanos() as u64;
                            let Some(bytes) = chunk else {
                                break;
                            };
                            let it = RecordIter::<TargetedUpdate<P::Update>>::new(bytes);
                            applied += it.remaining() as u64;
                            for u in it {
                                let local = u.target as usize - base;
                                if program.gather(&mut states[local], &u.payload) {
                                    changed_vertices += 1;
                                    changed = true;
                                    if let Some(nf) = next_frontier {
                                        nf.mark(u.target, p);
                                    }
                                }
                            }
                        }
                    }
                    if resident {
                        for i in 0..scratch.num_slices() {
                            let run = scratch.slice(i).chunk(p);
                            applied += run.len() as u64;
                            for u in run {
                                let local = u.target as usize - base;
                                if program.gather(&mut states[local], &u.payload) {
                                    changed_vertices += 1;
                                    changed = true;
                                    if let Some(nf) = next_frontier {
                                        nf.mark(u.target, p);
                                    }
                                }
                            }
                        }
                    }
                    Ok(changed)
                })?;
            }
            if from_files {
                // Truncating the stream is a TRIM (§3.3); keeping the
                // handle lets the next superstep append with no open()
                // and no allocation.
                store.truncate(&update_names[p])?;
            }
            stats.updates_applied += applied;
            stats.vertices_changed += changed_vertices;
        }
        Ok(())
    }

    /// Parallel gather (requires the vertex array in memory, more than
    /// one streaming partition, and update files small enough for the
    /// caller's memory gate): partitions are strided across `lanes`
    /// pool workers; each worker loads *its own* partitions' update
    /// files — whole, one at a time — into its pooled byte buffer (so
    /// the load of one partition overlaps the apply of another, across
    /// devices) and applies file plus resident-tail updates to the
    /// partition's disjoint vertex-state slice — node-parallel, no
    /// locks. The slowest lane's cumulative load time (the phase's
    /// critical-path I/O) is added to `blocked_ns`.
    fn gather_parallel(
        &mut self,
        program: &P,
        stats: &mut IterationStats,
        lanes: usize,
        blocked_ns: &mut u64,
        mark_next: bool,
    ) -> Result<()> {
        let kp = self.partitioner.num_partitions();
        self.gather_dirty = true;
        let pool = self.pool.as_ref().expect("parallel gather requires a pool");
        // Marking is an atomic fetch-or, so concurrent lanes share the
        // next-generation bitmap without synchronization.
        let next_frontier = mark_next.then_some(&self.frontier.next);
        let states = self
            .vertices
            .in_memory_mut()
            .expect("parallel gather requires in-memory vertices");
        debug_assert!(lanes <= self.gather_bufs.len());
        for c in &mut self.gather_counters {
            *c = GatherCounters::default();
        }
        let first_error: std::sync::Mutex<Option<Error>> = std::sync::Mutex::new(None);
        {
            let store = &self.store;
            let partitioner = &self.partitioner;
            let scratch = &self.scratch;
            let update_names = &self.update_names;
            let from_files = self.spilled_updates;
            let resident = self.resident_updates;
            let states_ptr = StatesPtr(states.as_mut_ptr());
            let states_ptr = &states_ptr;
            let bufs = PerWorkerPtr(self.gather_bufs.as_mut_ptr());
            let counters = PerWorkerPtr(self.gather_counters.as_mut_ptr());
            let first_error = &first_error;
            let job = |tid: usize| {
                if tid >= lanes {
                    return;
                }
                // SAFETY: each dispatch runs every tid exactly once
                // and tid < lanes <= len of both arrays, so these
                // `&mut` borrows are disjoint across workers.
                let buf: &mut Vec<u8> = unsafe { bufs.get_mut(tid) };
                let ctr: &mut GatherCounters = unsafe { counters.get_mut(tid) };
                // Static stride: worker t owns partitions t, t+lanes,…
                // — a fixed disjoint claim, so the state sub-slices
                // below never alias.
                let mut p = tid;
                while p < kp {
                    let range = partitioner.range(p);
                    let base = range.start;
                    // SAFETY: partition ranges are disjoint and each
                    // partition is claimed by exactly one worker.
                    let part_states = unsafe { states_ptr.partition_slice_mut(range) };
                    if from_files {
                        let t_io = Instant::now();
                        let loaded = store.read_all_into(&update_names[p], buf);
                        ctr.io_ns += t_io.elapsed().as_nanos() as u64;
                        if let Err(e) = loaded {
                            if let Ok(mut slot) = first_error.lock() {
                                slot.get_or_insert(e);
                            }
                            return;
                        }
                        let it = RecordIter::<TargetedUpdate<P::Update>>::new(buf);
                        ctr.applied += it.remaining() as u64;
                        for u in it {
                            let local = u.target as usize - base;
                            if program.gather(&mut part_states[local], &u.payload) {
                                ctr.changed += 1;
                                if let Some(nf) = next_frontier {
                                    nf.mark(u.target, p);
                                }
                            }
                        }
                    }
                    if resident {
                        for i in 0..scratch.num_slices() {
                            let run = scratch.slice(i).chunk(p);
                            ctr.applied += run.len() as u64;
                            for u in run {
                                let local = u.target as usize - base;
                                if program.gather(&mut part_states[local], &u.payload) {
                                    ctr.changed += 1;
                                    if let Some(nf) = next_frontier {
                                        nf.mark(u.target, p);
                                    }
                                }
                            }
                        }
                    }
                    p += lanes;
                }
            };
            pool.run(&job);
        }
        if let Some(e) = first_error.into_inner().unwrap_or(None) {
            return Err(e);
        }
        for c in &self.gather_counters {
            stats.updates_applied += c.applied;
            stats.vertices_changed += c.changed;
        }
        // The gather's critical-path I/O: the slowest lane's cumulative
        // file-load time. Lane loads overlap each other and the other
        // lanes' applies, so the max — not the sum — is what gates the
        // phase (keeps `streaming_ns` comparable with the serial
        // path's blocked-read accounting).
        *blocked_ns += self
            .gather_counters
            .iter()
            .map(|c| c.io_ns)
            .max()
            .unwrap_or(0);
        if self.spilled_updates {
            for name in &self.update_names {
                self.store.truncate(name)?;
            }
        }
        Ok(())
    }

    /// The allocate-per-superstep pipeline this engine used before the
    /// pooled redesign: a fresh `AsyncWriter` (and OS thread set) per
    /// superstep, a fresh prefetch thread per stream, per-chunk
    /// scatter `Vec`s from scoped thread spawns, a growing `pending`
    /// buffer, and a `to_vec()` byte copy per spill run.
    ///
    /// Kept as the differential-testing oracle and as the baseline the
    /// `disk_superstep` benchmark measures the pooled pipeline
    /// against. Results are identical to
    /// [`Self::try_scatter_gather`] up to update application order;
    /// only the allocation, thread-spawn and overlap behavior differs.
    pub fn try_scatter_gather_reference(&mut self, program: &P) -> Result<IterationStats> {
        if !self.clean {
            self.recover()?;
        }
        self.clean = false;
        let alloc_before = alloc_stats::snapshot();
        let mut stats = IterationStats::default();
        let kp = self.partitioner.num_partitions();
        let usz = size_of::<TargetedUpdate<P::Update>>();
        let snap0 = self.store.accounting().snapshot();
        let mut streaming_ns = 0u64;
        let mut mem_updates: Option<xstream_storage::StreamBuffer<TargetedUpdate<P::Update>>> =
            None;

        // ---- Merged scatter + shuffle ----
        let t_scatter = Instant::now();
        let mut pending: Vec<TargetedUpdate<P::Update>> = Vec::new();
        let mut spilled = false;
        {
            let writer = AsyncWriter::new(Arc::clone(&self.store), 1)?;
            let store = &self.store;
            let partitioner = &self.partitioner;
            let vertices = &self.vertices;
            let spill_arena = &mut self.spill_arena;
            let threads = self.config.threads.max(1);
            for s in partitioner.iter() {
                let states = vertices.load(store, partitioner, s)?;
                let base = partitioner.range(s).start;
                let mut reader = store.reader_aligned(&edge_stream(s), Edge::SIZE)?;
                loop {
                    let t_io = Instant::now();
                    let Some(bytes) = reader.next_chunk()? else {
                        break;
                    };
                    streaming_ns += t_io.elapsed().as_nanos() as u64;
                    let n_edges = bytes.len() / Edge::SIZE;
                    stats.edges_streamed += n_edges as u64;
                    let outputs =
                        scatter_chunk_scoped::<P>(program, &states, base, &bytes, threads);
                    for mut o in outputs {
                        stats.updates_generated += o.len() as u64;
                        pending.append(&mut o);
                    }
                    if pending.len() >= self.spill_threshold {
                        let t_io = Instant::now();
                        spill_reference(&writer, partitioner, kp, &mut pending, spill_arena)?;
                        streaming_ns += t_io.elapsed().as_nanos() as u64;
                        spilled = true;
                    }
                }
            }
            if !spilled && self.config.in_memory_updates {
                let buf = xstream_storage::shuffle::shuffle(&pending, kp, |u| {
                    partitioner.partition_of(u.target)
                });
                mem_updates = Some(buf);
            } else if !pending.is_empty() {
                let t_io = Instant::now();
                spill_reference(&writer, partitioner, kp, &mut pending, spill_arena)?;
                streaming_ns += t_io.elapsed().as_nanos() as u64;
            }
            writer.finish()?;
        }
        stats.scatter_ns = t_scatter.elapsed().as_nanos() as u64;

        // ---- Gather ----
        let t_gather = Instant::now();
        for p in self.partitioner.iter() {
            let mut states = self.vertices.load_mut(&self.store, &self.partitioner, p)?;
            let base = self.partitioner.range(p).start;
            let mut changed = false;
            if let Some(buf) = &mem_updates {
                for u in buf.chunk(p) {
                    stats.updates_applied += 1;
                    let local = u.target as usize - base;
                    if program.gather(&mut states[local], &u.payload) {
                        stats.vertices_changed += 1;
                        changed = true;
                    }
                }
            } else {
                let mut reader = self.store.reader_aligned(&update_stream(p), usz)?;
                loop {
                    let t_io = Instant::now();
                    let Some(bytes) = reader.next_chunk()? else {
                        break;
                    };
                    streaming_ns += t_io.elapsed().as_nanos() as u64;
                    for u in RecordIter::<TargetedUpdate<P::Update>>::new(&bytes) {
                        stats.updates_applied += 1;
                        let local = u.target as usize - base;
                        if program.gather(&mut states[local], &u.payload) {
                            stats.vertices_changed += 1;
                            changed = true;
                        }
                    }
                }
            }
            if changed {
                self.vertices
                    .store_back(&self.store, &self.partitioner, p, &states)?;
            }
            self.store.delete(&update_stream(p))?;
        }
        stats.gather_ns = t_gather.elapsed().as_nanos() as u64;

        let snap1 = self.store.accounting().snapshot();
        stats.bytes_read = snap1.bytes_read() - snap0.bytes_read();
        stats.bytes_written = snap1.bytes_written() - snap0.bytes_written();
        stats.streaming_ns = streaming_ns;
        stats.mem_refs =
            stats.edges_streamed * 2 + stats.updates_generated + stats.updates_applied * 2;
        let alloc = alloc_before.delta(&alloc_stats::snapshot());
        stats.alloc_count = alloc.count;
        stats.alloc_bytes = alloc.bytes;
        Ok(stats)
    }
}

/// Threshold below which a loaded chunk is scattered inline instead of
/// dispatched to the pool (the handshake is cheap but not free).
const PARALLEL_SCATTER_MIN: usize = 4096;

/// Scatters one decoded edge chunk across the pooled workers, each
/// appending into the per-partition buckets of its own persistent
/// scratch slice (the §4.3 layering of in-memory parallelism over
/// loaded disk chunks, fused with the single-stage shuffle).
fn scatter_chunk_pooled<P: EdgeProgram>(
    pool: Option<&WorkerPool>,
    scratch: &mut ShufflePool<TargetedUpdate<P::Update>>,
    program: &P,
    states: &[P::State],
    base: usize,
    bytes: &[u8],
    partitioner: &Partitioner,
) {
    let n_edges = bytes.len() / Edge::SIZE;
    if n_edges == 0 {
        return;
    }
    let threads = scratch.num_slices();
    let scratch_ptr = PerWorkerPtr(scratch.slices_ptr());
    let run = |tid: usize, range: std::ops::Range<usize>| {
        // SAFETY: each dispatch runs every tid exactly once and
        // tid < threads == num_slices, so these `&mut` borrows are
        // disjoint across workers.
        let slice: &mut ShuffleScratch<_> = unsafe { scratch_ptr.get_mut(tid) };
        let sub = &bytes[range.start * Edge::SIZE..range.end * Edge::SIZE];
        for e in RecordIter::<Edge>::new(sub) {
            let src_state = &states[(e.src as usize) - base];
            if !program.needs_scatter(src_state) {
                continue;
            }
            if let Some(u) = program.scatter(src_state, &e) {
                slice.push(
                    TargetedUpdate::new(e.dst, u),
                    partitioner.partition_of(e.dst),
                );
            }
        }
    };
    match pool {
        Some(pool) if n_edges >= PARALLEL_SCATTER_MIN => {
            let per = n_edges.div_ceil(threads);
            let job = |tid: usize| {
                let lo = (tid * per).min(n_edges);
                let hi = ((tid + 1) * per).min(n_edges);
                run(tid, lo..hi);
            };
            pool.run(&job);
        }
        _ => run(0, 0..n_edges),
    }
}

/// Shared spill step of the fused scatter+shuffle, used by both the
/// dense chunk loop and the sparse run assembly: once the filling pool
/// reaches the stream-buffer budget, waits out the previous spill's
/// borrowed runs, swaps the ping-pong pools, rearms the fresh one and
/// hands the full one's bucket runs to the per-device writer threads
/// by reference — scatter continues into the fresh pool while the
/// writer drains the other (§3.3's double-buffered output, minus the
/// copy). Returns whether it spilled.
#[allow(clippy::too_many_arguments)]
fn spill_if_full<U: Record>(
    writer: &AsyncWriter,
    update_names: &[Arc<str>],
    scratch: &mut ShufflePool<TargetedUpdate<U>>,
    drain: &mut ShufflePool<TargetedUpdate<U>>,
    spill_mark: &mut WriteMark,
    plan: MultiStagePlan,
    kp: usize,
    spill_threshold: usize,
    stats: &mut IterationStats,
    blocked_ns: &mut u64,
) -> Result<bool> {
    if scratch.total_len() < spill_threshold {
        return Ok(false);
    }
    stats.updates_generated += scratch.total_len() as u64;
    let t_io = Instant::now();
    writer.wait_until(*spill_mark);
    *blocked_ns += t_io.elapsed().as_nanos() as u64;
    std::mem::swap(scratch, drain);
    scratch.begin(plan);
    spill_borrowed(writer, update_names, drain, kp, blocked_ns)?;
    *spill_mark = writer.submitted();
    Ok(true)
}

/// Bucket runs below this size are coalesced into one pooled buffer
/// per partition instead of submitted zero-copy: with many slices and
/// partitions the per-slice runs can shrink far below the large
/// sequential writes the paper's I/O model assumes, and the per-append
/// overhead (syscall + accounting) then outweighs the saved copy.
const BORROW_MIN_BYTES: usize = 64 << 10;

/// Zero-copy spill: submits every large bucket run of `full` to the
/// per-device writer threads *by reference* — no byte buffer, no copy;
/// the writer appends straight from the bucket memory. Runs smaller
/// than [`BORROW_MIN_BYTES`] are coalesced per partition into a
/// recycled buffer first (one large append instead of many small
/// ones); submission order within each stream is preserved either way.
/// The caller must not mutate `full` until a writer barrier
/// ([`AsyncWriter::wait_until`] with a [`WriteMark`] taken after this
/// call, or [`AsyncWriter::flush`]) covers these submissions — the
/// engine's ping-pong output pools provide exactly that window. Only
/// the time spent *blocked* on writer backpressure counts toward
/// `blocked_ns`.
fn spill_borrowed<U: Record>(
    writer: &AsyncWriter,
    names: &[Arc<str>],
    full: &ShufflePool<TargetedUpdate<U>>,
    kp: usize,
    blocked_ns: &mut u64,
) -> Result<()> {
    for (p, name) in names.iter().enumerate().take(kp) {
        let mut coalesced: Option<Vec<u8>> = None;
        for i in 0..full.num_slices() {
            let run = full.slice(i).chunk(p);
            if run.is_empty() {
                continue;
            }
            let bytes = records_as_bytes(run);
            if bytes.len() >= BORROW_MIN_BYTES {
                // Keep the stream's byte order: flush the pending
                // small-run buffer before this larger run.
                if let Some(buf) = coalesced.take() {
                    let t_io = Instant::now();
                    writer.submit(Arc::clone(name), buf)?;
                    *blocked_ns += t_io.elapsed().as_nanos() as u64;
                }
                let t_io = Instant::now();
                // SAFETY: the engine keeps `full` alive and unmutated
                // until the next `wait_until`/`flush` barrier
                // (ping-pong contract documented above).
                unsafe {
                    writer.submit_borrowed(Arc::clone(name), bytes.as_ptr(), bytes.len())?;
                }
                *blocked_ns += t_io.elapsed().as_nanos() as u64;
            } else {
                coalesced
                    .get_or_insert_with(|| writer.acquire())
                    .extend_from_slice(bytes);
            }
        }
        if let Some(buf) = coalesced {
            if buf.is_empty() {
                writer.recycle(buf);
            } else {
                let t_io = Instant::now();
                writer.submit(Arc::clone(name), buf)?;
                *blocked_ns += t_io.elapsed().as_nanos() as u64;
            }
        }
    }
    Ok(())
}

/// Reference-pipeline scatter: one fresh output `Vec` per scoped
/// worker thread per chunk.
fn scatter_chunk_scoped<P: EdgeProgram>(
    program: &P,
    states: &[P::State],
    base: usize,
    bytes: &[u8],
    threads: usize,
) -> Vec<Vec<TargetedUpdate<P::Update>>> {
    let n_edges = bytes.len() / Edge::SIZE;
    let run = |range: std::ops::Range<usize>| -> Vec<TargetedUpdate<P::Update>> {
        let mut out = Vec::new();
        let slice = &bytes[range.start * Edge::SIZE..range.end * Edge::SIZE];
        for e in RecordIter::<Edge>::new(slice) {
            let src_state = &states[(e.src as usize) - base];
            if !program.needs_scatter(src_state) {
                continue;
            }
            if let Some(u) = program.scatter(src_state, &e) {
                out.push(TargetedUpdate::new(e.dst, u));
            }
        }
        out
    };
    if threads <= 1 || n_edges < 4096 {
        return vec![run(0..n_edges)];
    }
    let per = n_edges.div_ceil(threads);
    std::thread::scope(|scope| {
        let run = &run;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = (t * per).min(n_edges);
                let hi = ((t + 1) * per).min(n_edges);
                scope.spawn(move || run(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scatter worker panicked"))
            .collect()
    })
}

/// Reference-pipeline spill: in-memory shuffle of the pending buffer
/// through the pooled arena, then one `to_vec()` byte copy per run
/// submitted to the per-superstep writer.
fn spill_reference<U: Record>(
    writer: &AsyncWriter,
    partitioner: &Partitioner,
    kp: usize,
    pending: &mut Vec<TargetedUpdate<U>>,
    arena: &mut ShuffleArena<TargetedUpdate<U>>,
) -> Result<()> {
    arena.shuffle(pending, kp, |u| partitioner.partition_of(u.target));
    for (p, run) in arena.iter_chunks() {
        if !run.is_empty() {
            writer.submit(update_stream(p), records_as_bytes(run).to_vec())?;
        }
    }
    pending.clear();
    Ok(())
}

impl<P: EdgeProgram> Engine<P> for DiskEngine<P> {
    fn num_vertices(&self) -> usize {
        self.partitioner.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn scatter_gather(&mut self, program: &P) -> IterationStats {
        if self.skip_supersteps > 0 {
            // Resuming from a checkpoint: the first `k` supersteps of
            // the driving loop were already executed (and persisted)
            // by the interrupted run. Report them as no-cost
            // iterations — `vertices_changed: 1` keeps convergence
            // loops going — without touching streams or counters
            // (`completed_supersteps` already includes them).
            self.skip_supersteps -= 1;
            return IterationStats {
                vertices_changed: 1,
                ..Default::default()
            };
        }
        let mut stats = self
            .try_scatter_gather(program)
            .expect("out-of-core scatter-gather failed");
        self.completed_supersteps += 1;
        let every = self.config.checkpoint_every;
        if every > 0 && self.completed_supersteps.is_multiple_of(every as u64) {
            match self.write_checkpoint() {
                Ok(()) => stats.checkpoints += 1,
                // A full device must not kill a healthy superstep: the
                // run's results do not depend on the checkpoint, so
                // skip it with a warning and try again at the next
                // cadence point (the previous checkpoint is intact —
                // slots are written atomically).
                Err(Error::Io(e)) if e.raw_os_error() == Some(28) => {
                    eprintln!(
                        "warning: checkpoint skipped at superstep {}: device full ({e})",
                        self.completed_supersteps
                    );
                }
                Err(e) => panic!("checkpoint write failed after successful superstep: {e}"),
            }
        }
        stats
    }

    fn vertex_map(&mut self, f: &mut dyn FnMut(VertexId, &mut P::State)) {
        if self.skip_supersteps > 0 {
            // Replayed supersteps already incorporate the maps the
            // original run interleaved with them (the checkpoint was
            // taken post-gather, pre-map of the *next* iteration, so
            // exactly the maps up to the restored superstep are in the
            // persisted state). Re-applying them here would
            // double-apply. The restored frontier must survive the
            // replay too, so invalidation below is skipped with it.
            return;
        }
        // The map may activate or deactivate any vertex; the next
        // superstep rebuilds the frontier from a `needs_scatter` scan.
        self.frontier_valid = false;
        for p in self.partitioner.iter() {
            let base = self.partitioner.range(p).start;
            self.vertices
                .update_partition(&self.store, &self.partitioner, p, |states| {
                    for (i, s) in states.iter_mut().enumerate() {
                        f((base + i) as VertexId, s);
                    }
                    Ok(true)
                })
                .expect("vertex map failed");
        }
    }

    fn vertex_fold(
        &mut self,
        init: f64,
        f: &mut dyn FnMut(f64, VertexId, &P::State) -> f64,
    ) -> f64 {
        let mut acc = init;
        for p in self.partitioner.iter() {
            let states = self
                .vertices
                .load(&self.store, &self.partitioner, p)
                .expect("vertex load failed");
            let base = self.partitioner.range(p).start;
            for (i, s) in states.iter().enumerate() {
                acc = f(acc, (base + i) as VertexId, s);
            }
        }
        acc
    }

    fn states(&mut self) -> Vec<P::State> {
        self.vertices
            .collect_all(&self.store, &self.partitioner)
            .expect("vertex collect failed")
    }

    fn seed_frontier(&mut self, sources: &[VertexId]) {
        if self.skip_supersteps > 0 {
            // Checkpoint replay: the restored frontier must survive
            // (see `vertex_map`), and the sources hint describes the
            // *initial* state, not the restored one.
            return;
        }
        if !(self.tracked && self.config.frontier_skip) {
            return;
        }
        self.frontier.ensure(&self.partitioner);
        for &v in sources {
            if (v as usize) < self.partitioner.num_vertices() {
                self.frontier
                    .current
                    .mark(v, self.partitioner.partition_of(v));
            }
        }
        self.frontier_valid = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xstream_core::Termination;
    use xstream_graph::generators;

    struct MinLabel;

    impl EdgeProgram for MinLabel {
        type State = u32;
        type Update = u32;

        fn init(&self, v: VertexId) -> u32 {
            v
        }

        fn scatter(&self, s: &u32, _e: &Edge) -> Option<u32> {
            Some(*s)
        }

        fn gather(&self, d: &mut u32, u: &u32) -> bool {
            if u < d {
                *d = *u;
                true
            } else {
                false
            }
        }
    }

    fn temp_store(tag: &str) -> StreamStore {
        let root = std::env::temp_dir().join(format!("xstream_disk_eng_{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        StreamStore::new(&root, 8192).unwrap()
    }

    fn small_config() -> EngineConfig {
        EngineConfig::default()
            .with_threads(2)
            .with_io_unit(8192)
            .with_memory_budget(1 << 20)
    }

    #[test]
    fn min_label_matches_in_memory_engine() {
        let g = generators::erdos_renyi(300, 2500, 21).to_undirected();
        let store = temp_store("minlabel");
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, small_config()).unwrap();
        disk.run(&MinLabel, Termination::Converged);
        let disk_states = disk.states();

        let mut mem = xstream_memory::InMemoryEngine::from_graph(
            &g,
            &MinLabel,
            EngineConfig::default().with_threads(2).with_partitions(8),
        );
        mem.run(&MinLabel, Termination::Converged);
        assert_eq!(disk_states, mem.states());
    }

    #[test]
    fn forced_spilling_still_correct() {
        // A tiny spill threshold forces the update files path.
        let g = generators::path(200).to_undirected();
        let store = temp_store("spill");
        let cfg = EngineConfig {
            in_memory_updates: false,
            ..small_config()
        };
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, cfg).unwrap();
        disk.run(&MinLabel, Termination::Converged);
        assert!(disk.states().iter().all(|&l| l == 0));
    }

    #[test]
    fn on_disk_vertices_path() {
        let g = generators::cycle(64);
        let store = temp_store("ondiskverts");
        let cfg = EngineConfig {
            keep_vertices_in_memory: false,
            ..small_config()
        };
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, cfg).unwrap();
        disk.run(&MinLabel, Termination::Converged);
        assert!(disk.states().iter().all(|&l| l == 0));
    }

    #[test]
    fn from_edge_file_roundtrip() {
        let dir = std::env::temp_dir().join("xstream_disk_input_fromfile");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = generators::erdos_renyi(100, 900, 5).to_undirected();
        xstream_graph::fileio::write_edge_file(&path, &g).unwrap();
        let store = temp_store("fromfile");
        let mut disk = DiskEngine::from_edge_file(store, &path, &MinLabel, small_config()).unwrap();
        assert_eq!(disk.num_edges(), g.num_edges());
        disk.run(&MinLabel, Termination::Converged);
        let mut mem = xstream_memory::InMemoryEngine::from_graph(
            &g,
            &MinLabel,
            EngineConfig::default().with_partitions(4),
        );
        mem.run(&MinLabel, Termination::Converged);
        assert_eq!(disk.states(), mem.states());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mirrored_ingest_matches_materialized_expansion() {
        // Streaming a *directed* file with on-the-fly undirected
        // mirroring must equal building from the doubled-in-RAM graph.
        let dir = std::env::temp_dir().join("xstream_disk_input_mirror");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.xse");
        let g = generators::preferential_attachment(200, 4, 11);
        xstream_graph::fileio::write_edge_file(&path, &g).unwrap();

        let store = temp_store("mirror_stream");
        let mut streamed = DiskEngine::from_ingest(
            store,
            &EdgeIngest::undirected(&path),
            &MinLabel,
            small_config(),
        )
        .unwrap();
        let und = g.to_undirected();
        assert_eq!(streamed.num_edges(), und.num_edges());
        streamed.run(&MinLabel, Termination::Converged);

        let store = temp_store("mirror_mat");
        let mut materialized =
            DiskEngine::from_graph(store, &und, &MinLabel, small_config()).unwrap();
        materialized.run(&MinLabel, Termination::Converged);
        assert_eq!(streamed.states(), materialized.states());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ingest_rejects_out_of_range_edges() {
        // A file whose header under-declares the vertex range must be
        // refused at ingest, not panic deep inside the partitioner.
        let dir = std::env::temp_dir().join("xstream_disk_input_oob");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.xse");
        // Handcraft the raw bytes — the writers themselves now refuse
        // to seal a file whose header under-declares the vertex range.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(xstream_graph::fileio::MAGIC);
        bytes.extend_from_slice(&4u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(records_as_bytes(&[Edge::new(0, 9)]));
        std::fs::write(&path, &bytes).unwrap();
        let store = temp_store("oob");
        let r = DiskEngine::from_edge_file(store, &path, &MinLabel, small_config());
        assert!(matches!(r, Err(Error::InvalidInput(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_accounting_sees_edge_traffic() {
        let g = generators::erdos_renyi(200, 5000, 8);
        let store = temp_store("acct");
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, small_config()).unwrap();
        let it = disk.try_scatter_gather(&MinLabel).unwrap();
        assert_eq!(it.edges_streamed, 5000);
        // Edges are read from disk every iteration.
        assert!(it.bytes_read >= (5000 * Edge::SIZE) as u64);
    }

    #[test]
    fn vertex_map_and_fold_on_disk() {
        let g = generators::path(50);
        let store = temp_store("vmap");
        let cfg = EngineConfig {
            keep_vertices_in_memory: false,
            ..small_config()
        };
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, cfg).unwrap();
        disk.vertex_map(&mut |v, s| *s = v + 1);
        let sum = disk.vertex_fold(0.0, &mut |acc, _v, s| acc + *s as f64);
        assert_eq!(sum, (1..=50).map(f64::from).sum::<f64>());
    }

    #[test]
    fn infeasible_budget_is_reported() {
        let g = generators::path(1 << 16);
        let store = temp_store("infeasible");
        let cfg = EngineConfig::default()
            .with_io_unit(16 << 20)
            .with_memory_budget(1 << 10);
        let r = DiskEngine::from_graph(store, &g, &MinLabel, cfg);
        assert!(matches!(r, Err(Error::Config(_))));
    }

    #[test]
    fn pooled_and_reference_pipelines_agree() {
        // The differential invariant behind the pooled redesign: both
        // pipelines must converge to identical states on an
        // order-insensitive program, spilled or not, at every gather
        // parallelism.
        for (tag, in_memory_updates, gather_threads) in [
            ("agree_mem", true, 4),
            ("agree_spill", false, 1),
            ("agree_spill_par", false, 4),
        ] {
            let g = generators::preferential_attachment(300, 4, 7).to_undirected();
            let cfg = EngineConfig {
                in_memory_updates,
                ..small_config()
                    .with_threads(4)
                    .with_gather_threads(gather_threads)
            };
            let store_a = temp_store(tag);
            let mut pooled = DiskEngine::from_graph(store_a, &g, &MinLabel, cfg.clone()).unwrap();
            let store_b = temp_store(&format!("{tag}_ref"));
            let mut reference = DiskEngine::from_graph(store_b, &g, &MinLabel, cfg).unwrap();
            for step in 0..4 {
                let a = pooled.try_scatter_gather(&MinLabel).unwrap();
                let b = reference.try_scatter_gather_reference(&MinLabel).unwrap();
                assert_eq!(a.edges_streamed, b.edges_streamed, "{tag} step {step}");
                assert_eq!(
                    a.updates_generated, b.updates_generated,
                    "{tag} step {step}"
                );
                assert_eq!(a.updates_applied, b.updates_applied, "{tag} step {step}");
                assert_eq!(pooled.states(), reference.states(), "{tag} step {step}");
            }
        }
    }

    #[test]
    fn mixing_pipelines_on_one_engine_is_safe() {
        // The pooled and reference supersteps share the engine's
        // streams; alternating them must not corrupt state.
        let g = generators::erdos_renyi(150, 1200, 3).to_undirected();
        let store = temp_store("mixed");
        let cfg = EngineConfig {
            in_memory_updates: false,
            ..small_config()
        };
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, cfg).unwrap();
        for step in 0..6 {
            if step % 2 == 0 {
                disk.try_scatter_gather(&MinLabel).unwrap();
            } else {
                disk.try_scatter_gather_reference(&MinLabel).unwrap();
            }
        }
        // Converged by now on this small graph.
        let mut mem = xstream_memory::InMemoryEngine::from_graph(
            &g,
            &MinLabel,
            EngineConfig::default().with_partitions(4),
        );
        mem.run(&MinLabel, Termination::Converged);
        assert_eq!(disk.states(), mem.states());
    }

    #[test]
    fn gather_parallelism_sweep_matches_serial() {
        // Forced spill with several partitions: 1/2/4 gather lanes must
        // all converge to the serial result.
        let g = generators::erdos_renyi(600, 4000, 33).to_undirected();
        let cfg_base = EngineConfig {
            in_memory_updates: false,
            ..EngineConfig::default()
                .with_threads(4)
                .with_io_unit(8192)
                .with_memory_budget(1 << 20)
                .with_partitions(8)
        };
        let expected = {
            let store = temp_store("gsweep_serial");
            let cfg = cfg_base.clone().with_gather_threads(1);
            let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, cfg).unwrap();
            disk.run(&MinLabel, Termination::Converged);
            disk.states()
        };
        assert!(expected.iter().all(|&l| l == 0));
        for lanes in [2usize, 4] {
            let store = temp_store(&format!("gsweep_{lanes}"));
            let cfg = cfg_base.clone().with_gather_threads(lanes);
            let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, cfg).unwrap();
            disk.run(&MinLabel, Termination::Converged);
            assert_eq!(disk.states(), expected, "gather_threads={lanes}");
        }
    }

    #[test]
    fn resident_tail_skips_the_disk_round_trip() {
        // A spilling superstep leaves its post-spill tail in memory:
        // the bytes written must cover only the spilled prefix, and
        // gather must still apply every update.
        // Enough updates to cross the 1 MB spill threshold at least
        // once, with a remainder left over as the resident tail.
        let g = generators::erdos_renyi(2000, 70_000, 13).to_undirected();
        let store = temp_store("tail");
        let cfg = EngineConfig {
            in_memory_updates: false,
            ..small_config()
        };
        let mut disk = DiskEngine::from_graph(store, &g, &MinLabel, cfg).unwrap();
        let it = disk.try_scatter_gather(&MinLabel).unwrap();
        let usz = size_of::<TargetedUpdate<u32>>() as u64;
        assert!(it.updates_generated > 0);
        assert_eq!(it.updates_applied, it.updates_generated);
        // Spills happened, but not every update hit the disk.
        assert!(it.bytes_written > 0, "spill path not exercised");
        assert!(
            it.bytes_written < it.updates_generated * usz,
            "resident tail was written to disk anyway ({} >= {})",
            it.bytes_written,
            it.updates_generated * usz
        );
    }
}
