//! Whole-store integrity scrub and repair (`xstream scrub [--repair]`).
//!
//! A store sealed by the engine carries a three-level integrity chain:
//! the [`MANIFEST`](xstream_storage::Manifest) names every durable
//! stream and records the CRC of its `.sum` sidecar; each sidecar
//! records one CRC per I/O-unit chunk; each chunk covers the stream
//! bytes themselves. `scrub` walks that chain top-down — manifest →
//! sidecar authenticity → per-chunk stream verification — so a rotted
//! sidecar is distinguished from a rotted stream instead of being
//! reported as one, and every byte of every durable stream is read
//! exactly once.
//!
//! Verification reads go through `std::fs` directly rather than the
//! [`StreamStore`] read path: the store's own verifier trusts the
//! on-disk sidecar, which is precisely what scrub must not do, and it
//! fails on the *first* bad chunk where scrub wants a complete verdict.
//!
//! With `repair`, detected damage is dispatched by stream role:
//!
//! * **Derived streams are rebuilt.** A rotted or `needs_rebuild`
//!   sparse-scatter index is recomputed from its partition's edge
//!   stream (which must itself verify — the index is a pure function of
//!   it) using the partitioner reconstructed from the manifest's
//!   recorded `vertices` / `--partitions` config. A rotted sidecar over
//!   an intact stream (proven by re-deriving the sidecar and matching
//!   its CRC against the manifest) is simply rewritten.
//! * **Stale streams are quarantined.** A rotted checkpoint slot, or an
//!   unlisted non-empty update/unknown stream left by a killed run, is
//!   renamed to `<name>.quarantined` and dropped from the manifest —
//!   never silently deleted.
//! * **Primary data is not guessed at.** A rotted edge stream is
//!   reported as unrepairable; rebuilding it would require the original
//!   input.
//!
//! A successful repair re-seals the manifest with a bumped generation,
//! leaving a store that passes a subsequent scrub cleanly.

use std::fs;
use std::io::Read as _;
use std::path::Path;

use crate::checkpoint::frame_is_valid;
use xstream_core::record::{records_as_bytes, RecordIter};
use xstream_core::{Edge, Error, Partitioner, Record, Result};
use xstream_storage::{
    crc32, crc32c, Manifest, StreamRole, StreamStore, SumSidecar, MANIFEST_NAME,
};

/// What scrub concluded about one stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every chunk matched its checksum (and, for checkpoint slots, the
    /// frame is structurally valid).
    Intact,
    /// The stream bytes are intact but the `.sum` sidecar is missing or
    /// rotted (proven by re-deriving it and matching the manifest CRC).
    SidecarRotted,
    /// The stream failed verification; `detail` says how (first bad
    /// chunk, length mismatch, invalid frame, ...).
    Corrupt {
        /// Human-readable description of the first failure.
        detail: String,
    },
    /// Listed in the manifest but absent on disk.
    Missing,
    /// The manifest flagged this stream for rebuild (a mid-run
    /// degradation already consumed the corruption).
    NeedsRebuild,
    /// Present on disk but not listed in the manifest (stale output of
    /// a killed run, or foreign).
    Unlisted,
    /// Not covered by checksums and carrying no validity structure of
    /// its own; nothing to verify (e.g. per-run vertex state).
    Unverified,
}

/// What `--repair` did (or would have to do) about a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Nothing needed.
    None,
    /// Derived stream recomputed from its verified source.
    Rebuilt,
    /// Sidecar rewritten over an intact stream.
    SidecarRewritten,
    /// Renamed to `<name>.quarantined` and dropped from the manifest.
    Quarantined,
    /// Damage to primary data; no repair exists without the original
    /// input.
    Unrepairable,
    /// Repair was needed but not requested (`--repair` off).
    RepairNeeded,
}

/// Per-stream scrub result.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Stream name (manifest entry or on-disk file).
    pub name: String,
    /// Role the manifest records (or infers from the name).
    pub role: StreamRole,
    /// What verification concluded.
    pub verdict: Verdict,
    /// What repair did about it.
    pub action: Action,
}

/// Whole-store scrub result.
#[derive(Debug, Clone)]
pub struct ScrubReport {
    /// Whether the manifest itself decoded and passed its CRC.
    pub manifest_ok: bool,
    /// Store generation from the manifest (post-repair value if a
    /// repair re-sealed it).
    pub generation: u64,
    /// Graph/program/config fingerprint from the manifest.
    pub fingerprint: u64,
    /// One report per stream examined, manifest entries first.
    pub streams: Vec<StreamReport>,
    /// Whether a repair pass rewrote the manifest.
    pub repaired: bool,
}

impl ScrubReport {
    /// True when every stream verified intact and the manifest is
    /// valid — the store needs no repair.
    pub fn is_clean(&self) -> bool {
        self.manifest_ok
            && self
                .streams
                .iter()
                .all(|s| matches!(s.verdict, Verdict::Intact | Verdict::Unverified))
    }

    /// True when damage remains that `--repair` could not (or was not
    /// asked to) fix.
    pub fn has_unresolved_damage(&self) -> bool {
        !self.manifest_ok
            || self.streams.iter().any(|s| {
                !matches!(s.verdict, Verdict::Intact | Verdict::Unverified)
                    && !matches!(
                        s.action,
                        Action::Rebuilt | Action::SidecarRewritten | Action::Quarantined
                    )
            })
    }
}

/// Verifies `path` against `sidecar` chunk by chunk through a reused
/// buffer. Returns the first failing chunk, or `None` if every chunk
/// (and the total length) matches.
fn verify_file(path: &Path, sidecar: &SumSidecar, buf: &mut Vec<u8>) -> Result<Option<String>> {
    let meta = match fs::metadata(path) {
        Ok(m) => m,
        Err(_) => return Ok(Some("file missing".into())),
    };
    if meta.len() != sidecar.total_len {
        return Ok(Some(format!(
            "length {} does not match sealed length {}",
            meta.len(),
            sidecar.total_len
        )));
    }
    let mut file = fs::File::open(path).map_err(Error::Io)?;
    let unit = sidecar.unit.max(1) as usize;
    let mut remaining = sidecar.total_len;
    for (i, &expect) in sidecar.crcs.iter().enumerate() {
        let want = (remaining as usize).min(unit);
        buf.clear();
        buf.resize(want, 0);
        if file.read_exact(buf).is_err() {
            return Ok(Some(format!("short read at chunk {i}")));
        }
        if crc32c(buf) != expect {
            return Ok(Some(format!("chunk {i} failed checksum")));
        }
        remaining -= want as u64;
    }
    Ok(None)
}

/// Quarantines a stream: renames it to `<name>.quarantined` (replacing
/// any previous quarantine of the same name) and removes its sidecar.
fn quarantine(root: &Path, name: &str) -> Result<()> {
    let from = root.join(name);
    let to = root.join(format!("{name}.quarantined"));
    fs::rename(&from, &to).map_err(Error::Io)?;
    let _ = fs::remove_file(root.join(format!("{name}.sum")));
    Ok(())
}

/// Writes a sidecar file atomically (temp + rename), mirroring how the
/// store seals one.
fn write_sidecar(root: &Path, name: &str, sidecar: &SumSidecar) -> Result<u32> {
    let encoded = sidecar.encode();
    let tmp = root.join(format!("{name}.sum.tmp"));
    let dst = root.join(format!("{name}.sum"));
    fs::write(&tmp, &encoded).map_err(Error::Io)?;
    fs::rename(&tmp, &dst).map_err(Error::Io)?;
    Ok(crc32(&encoded))
}

/// Rebuilds the sparse-scatter index of partition `p` from its (already
/// verified) edge stream, exactly as the engine's build pass does:
/// edge files of indexed partitions are grouped by source, so the
/// offsets are a single monotone walk. Returns the new index bytes.
fn rebuild_index(edges_bytes: &[u8], partitioner: &Partitioner, p: usize) -> Result<Vec<u8>> {
    if !edges_bytes.len().is_multiple_of(Edge::SIZE) {
        return Err(Error::Config(format!(
            "edges.{p} length {} is not a whole number of edge records",
            edges_bytes.len()
        )));
    }
    let count = edges_bytes.len() / Edge::SIZE;
    if count > u32::MAX as usize {
        return Err(Error::Config(format!(
            "edges.{p} has {count} records, beyond the u32 index format"
        )));
    }
    let range = partitioner.range(p);
    let mut offsets: Vec<u32> = Vec::with_capacity(range.len() + 2);
    offsets.push(0);
    let mut iter = RecordIter::<Edge>::new(edges_bytes).peekable();
    let mut i = 0u32;
    let mut prev_src: Option<u32> = None;
    for v in range {
        while let Some(e) = iter.peek() {
            if e.src as usize > v {
                break;
            }
            if prev_src.is_some_and(|ps| e.src < ps) {
                return Err(Error::Config(format!(
                    "edges.{p} is not grouped by source; cannot derive an index from it"
                )));
            }
            prev_src = Some(e.src);
            i += 1;
            iter.next();
        }
        offsets.push(i);
    }
    if (i as usize) != count {
        return Err(Error::Config(format!(
            "edges.{p} contains sources outside partition {p}'s vertex range"
        )));
    }
    Ok(records_as_bytes(&offsets).to_vec())
}

/// The partitioner the manifest describes. `Partitioner::new` is a
/// fixed point of its own `(num_vertices, num_partitions)` output, so
/// feeding the recorded actual partition count back in reconstructs
/// the exact vertex ranges.
fn manifest_partitioner(manifest: &Manifest) -> Option<Partitioner> {
    let nv: usize = manifest.config_value("vertices")?.parse().ok()?;
    let kp: usize = manifest.config_value("--partitions")?.parse().ok()?;
    Some(Partitioner::new(nv, kp))
}

/// Scrubs the store rooted at `root` against its manifest; with
/// `repair`, rebuilds/quarantines what the verdicts allow and re-seals
/// the manifest under a bumped generation.
///
/// Returns an error only for environmental failures (the root is not a
/// store, a repair write failed); detected corruption is *reported*,
/// not raised.
pub fn scrub(root: &Path, repair: bool) -> Result<ScrubReport> {
    let manifest_path = root.join(MANIFEST_NAME);
    let mut manifest = match fs::read(&manifest_path).ok().and_then(|b| {
        if b.is_empty() {
            None
        } else {
            Manifest::decode(&b)
        }
    }) {
        Some(m) => m,
        None => {
            // No valid manifest: nothing is trustworthy enough to
            // repair against. Report every stream-looking file as
            // unverifiable and stop.
            let mut streams = Vec::new();
            if let Ok(names) = list_streams(root) {
                for name in names {
                    streams.push(StreamReport {
                        role: StreamRole::of_stream(&name),
                        name,
                        verdict: Verdict::Unverified,
                        action: Action::None,
                    });
                }
            }
            return Ok(ScrubReport {
                manifest_ok: false,
                generation: 0,
                fingerprint: 0,
                streams,
                repaired: false,
            });
        }
    };

    let io_unit: u64 = manifest
        .config_value("--io-unit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1 << 20);
    let mut buf: Vec<u8> = Vec::with_capacity(io_unit as usize);
    let mut streams: Vec<StreamReport> = Vec::new();

    // ---- Pass 1: verdicts for every manifest entry ----
    for entry in &manifest.entries {
        let path = root.join(&entry.name);
        let verdict = if entry.needs_rebuild {
            Verdict::NeedsRebuild
        } else if !path.exists() {
            Verdict::Missing
        } else if entry.has_sums {
            // Authenticate the sidecar against the manifest before
            // trusting it for chunk verification.
            let sidecar_path = root.join(format!("{}.sum", entry.name));
            let authentic = fs::read(&sidecar_path)
                .ok()
                .filter(|b| crc32(b) == entry.sum_crc)
                .and_then(|b| SumSidecar::decode(&b));
            match authentic {
                Some(sidecar) => match verify_file(&path, &sidecar, &mut buf)? {
                    None => checkpoint_structure(&path, entry.role)?,
                    Some(detail) => Verdict::Corrupt { detail },
                },
                None => {
                    // Sidecar missing or rotted. Re-derive it from the
                    // stream bytes: if the derived sidecar's CRC matches
                    // the manifest, the *stream* is intact and only the
                    // sidecar rotted.
                    let bytes = fs::read(&path).map_err(Error::Io)?;
                    let derived = SumSidecar::of_bytes(io_unit, &bytes);
                    if crc32(&derived.encode()) == entry.sum_crc {
                        Verdict::SidecarRotted
                    } else {
                        Verdict::Corrupt {
                            detail: "stream and sidecar disagree with the manifest".into(),
                        }
                    }
                }
            }
        } else {
            // Listed without sums (legacy or placeholder): the only
            // structure to check is a checkpoint frame's own CRC.
            checkpoint_structure(&path, entry.role)?
        };
        streams.push(StreamReport {
            name: entry.name.clone(),
            role: entry.role,
            verdict,
            action: Action::None,
        });
    }

    // ---- Unlisted on-disk streams ----
    for name in list_streams(root)? {
        if name == MANIFEST_NAME || manifest.entry(&name).is_some() {
            continue;
        }
        let role = StreamRole::of_stream(&name);
        let len = fs::metadata(root.join(&name)).map(|m| m.len()).unwrap_or(0);
        // Per-run vertex state and zero-length streams are expected
        // residue of a healthy run, not damage: the store creates every
        // registered stream's file up front, so e.g. a dense-only
        // partition leaves an empty `index.p` behind and an untracked
        // program leaves all of them.
        let verdict = if matches!(role, StreamRole::Vertices) || len == 0 {
            Verdict::Unverified
        } else {
            Verdict::Unlisted
        };
        streams.push(StreamReport {
            name,
            role,
            verdict,
            action: Action::None,
        });
    }

    if !repair {
        for s in &mut streams {
            s.action = match s.verdict {
                Verdict::Intact | Verdict::Unverified => Action::None,
                Verdict::Corrupt { .. } if matches!(s.role, StreamRole::Edges) => {
                    Action::Unrepairable
                }
                _ => Action::RepairNeeded,
            };
        }
        return Ok(ScrubReport {
            manifest_ok: true,
            generation: manifest.generation,
            fingerprint: manifest.fingerprint,
            streams,
            repaired: false,
        });
    }

    // ---- Pass 2: repair ----
    // Index rebuilds need the partitioner and a store handle whose I/O
    // unit matches the sealed chunking (so the re-sealed sidecar lines
    // up with what the engine will verify against).
    let partitioner = manifest_partitioner(&manifest);
    let store = StreamStore::new(root, io_unit as usize)?.with_verify(false);
    let mut dirty = false;

    // Edge-stream health gates index rebuilds; collect it first.
    let edges_ok = |streams: &[StreamReport], p: usize| {
        streams
            .iter()
            .any(|s| s.name == format!("edges.{p}") && s.verdict == Verdict::Intact)
    };

    for i in 0..streams.len() {
        let (name, role, verdict) = {
            let s = &streams[i];
            (s.name.clone(), s.role, s.verdict.clone())
        };
        let action = match (&verdict, role) {
            (Verdict::Intact | Verdict::Unverified, _) => Action::None,

            // Intact stream, rotted sidecar: rewrite it.
            (Verdict::SidecarRotted, _) => {
                let bytes = fs::read(root.join(&name)).map_err(Error::Io)?;
                let crc = write_sidecar(root, &name, &SumSidecar::of_bytes(io_unit, &bytes))?;
                if let Some(e) = manifest.entry_mut(&name) {
                    e.sum_crc = crc;
                    e.has_sums = true;
                }
                dirty = true;
                Action::SidecarRewritten
            }

            // Derived index: rebuild from the verified edge stream.
            (
                Verdict::Corrupt { .. } | Verdict::Missing | Verdict::NeedsRebuild,
                StreamRole::Index,
            ) => {
                let p: Option<usize> = name.strip_prefix("index.").and_then(|s| s.parse().ok());
                match (p, &partitioner) {
                    (Some(p), Some(part)) if edges_ok(&streams, p) => {
                        let edges_bytes =
                            fs::read(root.join(format!("edges.{p}"))).map_err(Error::Io)?;
                        let index_bytes = rebuild_index(&edges_bytes, part, p)?;
                        if store.exists(&name) {
                            store.delete(&name)?;
                        }
                        store.append(&name, &index_bytes)?;
                        let sealed = store.seal_sums(&name)?;
                        if let Some(e) = manifest.entry_mut(&name) {
                            e.len = index_bytes.len() as u64;
                            e.sum_crc = sealed.unwrap_or(0);
                            e.has_sums = sealed.is_some();
                            e.needs_rebuild = false;
                        }
                        dirty = true;
                        Action::Rebuilt
                    }
                    _ => Action::Unrepairable,
                }
            }

            // Primary data: nothing to rebuild it from.
            (Verdict::Corrupt { .. } | Verdict::Missing, StreamRole::Edges) => Action::Unrepairable,

            // A listed stream that vanished: drop the dangling entry.
            (Verdict::Missing, _) => {
                manifest.remove(&name);
                dirty = true;
                Action::Quarantined
            }

            // Rotted checkpoint slots and other non-derivable listed
            // streams: quarantine and delist (resume falls back to the
            // other slot or a fresh run).
            (Verdict::Corrupt { .. } | Verdict::NeedsRebuild, _) => {
                quarantine(root, &name)?;
                manifest.remove(&name);
                dirty = true;
                Action::Quarantined
            }

            // Stale residue of a killed run.
            (Verdict::Unlisted, _) => {
                quarantine(root, &name)?;
                Action::Quarantined
            }
        };
        streams[i].action = action;
    }

    if dirty {
        manifest.generation += 1;
        store.write_atomic(MANIFEST_NAME, &manifest.encode())?;
    }

    Ok(ScrubReport {
        manifest_ok: true,
        generation: manifest.generation,
        fingerprint: manifest.fingerprint,
        streams,
        repaired: dirty,
    })
}

/// For checkpoint slots, chunk checksums prove the bytes are what the
/// engine wrote, but the frame's own CRC additionally proves the write
/// was whole (not torn before sealing); check both. Everything else
/// passing chunk verification is simply intact.
fn checkpoint_structure(path: &Path, role: StreamRole) -> Result<Verdict> {
    if role != StreamRole::Checkpoint {
        return Ok(Verdict::Intact);
    }
    let bytes = fs::read(path).map_err(Error::Io)?;
    if frame_is_valid(&bytes) {
        Ok(Verdict::Intact)
    } else {
        Ok(Verdict::Corrupt {
            detail: "checkpoint frame failed structural validation".into(),
        })
    }
}

/// The stream-looking files under `root`: regular files, minus sidecars
/// and the temp/quarantine artifacts scrub itself produces.
fn list_streams(root: &Path) -> Result<Vec<String>> {
    let mut names = Vec::new();
    for dirent in fs::read_dir(root).map_err(Error::Io)? {
        let dirent = dirent.map_err(Error::Io)?;
        if !dirent.file_type().map_err(Error::Io)?.is_file() {
            continue;
        }
        let name = match dirent.file_name().into_string() {
            Ok(n) => n,
            Err(_) => continue,
        };
        if name.ends_with(".sum")
            || name.ends_with(".tmp")
            || name.ends_with(".quarantined")
            || name.starts_with('.')
        {
            continue;
        }
        names.push(name);
    }
    names.sort();
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xstream_core::{EdgeProgram, Engine, EngineConfig, FrontierMode, VertexId};

    /// Tracked so the build pass writes sparse-scatter index streams —
    /// scrub's rebuild path needs them to exist.
    struct MinLabel;
    impl EdgeProgram for MinLabel {
        type State = u32;
        type Update = u32;
        fn init(&self, v: VertexId) -> u32 {
            v
        }
        fn scatter(&self, s: &u32, _e: &Edge) -> Option<u32> {
            Some(*s)
        }
        fn gather(&self, d: &mut u32, u: &u32) -> bool {
            if u < d {
                *d = *u;
                true
            } else {
                false
            }
        }
        fn frontier_mode(&self) -> FrontierMode {
            FrontierMode::Tracked
        }
    }

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("xstream_scrub_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Builds a small sealed store by running the engine briefly.
    fn sealed_store(root: &Path) {
        let store = StreamStore::new(root, 4096).unwrap();
        let graph = xstream_graph::edgelist::from_pairs(
            64,
            &(0..63u32).map(|v| (v, v + 1)).collect::<Vec<_>>(),
        )
        .to_undirected();
        let program = MinLabel;
        let config = EngineConfig::default()
            .with_memory_budget(1 << 20)
            .with_io_unit(4096)
            .with_threads(1)
            .with_partitions(2)
            .with_checkpoint_every(1);
        let mut engine = crate::DiskEngine::from_graph(store, &graph, &program, config).unwrap();
        for _ in 0..2 {
            engine.scatter_gather(&program);
        }
    }

    fn rot_byte(root: &Path, name: &str, at: u64) {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(root.join(name))
            .unwrap();
        f.seek(SeekFrom::Start(at)).unwrap();
        let mut b = [0u8; 1];
        {
            use std::io::Read;
            let mut g = fs::File::open(root.join(name)).unwrap();
            g.seek(SeekFrom::Start(at)).unwrap();
            g.read_exact(&mut b).unwrap();
        }
        f.write_all(&[b[0] ^ 0x01]).unwrap();
    }

    #[test]
    fn clean_store_scrubs_clean() {
        let root = temp_root("clean");
        sealed_store(&root);
        let report = scrub(&root, false).unwrap();
        assert!(report.manifest_ok);
        assert!(report.is_clean(), "unexpected damage: {report:#?}");
        assert!(!report.has_unresolved_damage());
        // Every durable stream was examined.
        assert!(report.streams.iter().any(|s| s.name.starts_with("edges.")));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_manifest_is_reported_not_fatal() {
        let root = temp_root("nomanifest");
        sealed_store(&root);
        fs::remove_file(root.join(MANIFEST_NAME)).unwrap();
        let report = scrub(&root, true).unwrap();
        assert!(!report.manifest_ok);
        assert!(!report.is_clean());
        assert!(!report.repaired);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rotted_edge_stream_is_detected_and_unrepairable() {
        let root = temp_root("rotedges");
        sealed_store(&root);
        rot_byte(&root, "edges.0", 10);
        let report = scrub(&root, true).unwrap();
        let s = report.streams.iter().find(|s| s.name == "edges.0").unwrap();
        assert!(matches!(s.verdict, Verdict::Corrupt { .. }), "{s:?}");
        assert_eq!(s.action, Action::Unrepairable);
        assert!(report.has_unresolved_damage());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rotted_index_is_rebuilt_from_edges() {
        let root = temp_root("rotindex");
        sealed_store(&root);
        let index = "index.0";
        assert!(root.join(index).exists(), "expected a sparse index");
        rot_byte(&root, index, 4);
        // Detected without repair...
        let report = scrub(&root, false).unwrap();
        let s = report.streams.iter().find(|s| s.name == index).unwrap();
        assert!(matches!(s.verdict, Verdict::Corrupt { .. }));
        assert_eq!(s.action, Action::RepairNeeded);
        // ...rebuilt with repair...
        let before = fs::read(root.join(index)).unwrap();
        let report = scrub(&root, true).unwrap();
        let s = report.streams.iter().find(|s| s.name == index).unwrap();
        assert_eq!(s.action, Action::Rebuilt);
        assert!(report.repaired);
        let after = fs::read(root.join(index)).unwrap();
        assert_eq!(before.len(), after.len());
        assert_ne!(before, after, "the rotted byte must be healed");
        // ...and the store is manifest-valid again.
        let report = scrub(&root, false).unwrap();
        assert!(report.is_clean(), "{report:#?}");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rotted_sidecar_over_intact_stream_is_rewritten_not_quarantined() {
        let root = temp_root("rotsidecar");
        sealed_store(&root);
        // Rot a byte of the first chunk CRC (the sidecar header is 24
        // bytes; the store is small enough that offset 25 is always
        // inside the CRC array).
        rot_byte(&root, "edges.0.sum", 25);
        let report = scrub(&root, true).unwrap();
        let s = report.streams.iter().find(|s| s.name == "edges.0").unwrap();
        assert_eq!(s.verdict, Verdict::SidecarRotted);
        assert_eq!(s.action, Action::SidecarRewritten);
        let report = scrub(&root, false).unwrap();
        assert!(report.is_clean(), "{report:#?}");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rotted_checkpoint_is_quarantined() {
        let root = temp_root("rotckpt");
        sealed_store(&root);
        let slot = if root.join("checkpoint.0").exists() {
            "checkpoint.0"
        } else {
            "checkpoint.1"
        };
        rot_byte(&root, slot, 20);
        let report = scrub(&root, true).unwrap();
        let s = report.streams.iter().find(|s| s.name == slot).unwrap();
        assert!(matches!(s.verdict, Verdict::Corrupt { .. }));
        assert_eq!(s.action, Action::Quarantined);
        assert!(root.join(format!("{slot}.quarantined")).exists());
        assert!(!root.join(slot).exists());
        let report = scrub(&root, false).unwrap();
        assert!(report.is_clean(), "{report:#?}");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stale_update_stream_is_quarantined_and_vertices_are_left_alone() {
        let root = temp_root("staleupd");
        sealed_store(&root);
        fs::write(root.join("updates.0"), b"leftover spill bytes").unwrap();
        let report = scrub(&root, true).unwrap();
        let upd = report
            .streams
            .iter()
            .find(|s| s.name == "updates.0")
            .unwrap();
        assert_eq!(upd.verdict, Verdict::Unlisted);
        assert_eq!(upd.action, Action::Quarantined);
        assert!(root.join("updates.0.quarantined").exists());
        for s in report
            .streams
            .iter()
            .filter(|s| s.name.starts_with("vertices"))
        {
            assert_eq!(s.verdict, Verdict::Unverified);
            assert_eq!(s.action, Action::None);
        }
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn empty_unlisted_streams_are_placeholders_not_damage() {
        // The engine registers every stream name up front, which
        // creates the file: a dense-only partition leaves a zero-length
        // `index.p` behind, and an untracked program leaves all of
        // them. Scrub must not read those as stale damage.
        let root = temp_root("emptyidx");
        sealed_store(&root);
        fs::write(root.join("index.7"), b"").unwrap();
        let report = scrub(&root, false).unwrap();
        assert!(report.is_clean(), "{report:#?}");
        let s = report.streams.iter().find(|s| s.name == "index.7").unwrap();
        assert_eq!(s.verdict, Verdict::Unverified);
        let report = scrub(&root, true).unwrap();
        assert!(report.is_clean(), "{report:#?}");
        assert!(
            root.join("index.7").exists(),
            "repair must leave the placeholder alone"
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rebuilt_index_matches_the_original_bit_for_bit() {
        let root = temp_root("bitexact");
        sealed_store(&root);
        let original = fs::read(root.join("index.0")).unwrap();
        rot_byte(&root, "index.0", 8);
        scrub(&root, true).unwrap();
        let rebuilt = fs::read(root.join("index.0")).unwrap();
        assert_eq!(original, rebuilt);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rebuild_index_rejects_ungrouped_edges() {
        let part = Partitioner::new(8, 1);
        let edges = [Edge::new(3, 0), Edge::new(1, 0)];
        let bytes = records_as_bytes(&edges);
        assert!(rebuild_index(bytes, &part, 0).is_err());
        // Grouped input round-trips.
        let edges = [Edge::new(1, 0), Edge::new(1, 2), Edge::new(3, 0)];
        let bytes = records_as_bytes(&edges);
        let index = rebuild_index(bytes, &part, 0).unwrap();
        let offsets: Vec<u32> = RecordIter::<u32>::new(&index).collect();
        assert_eq!(offsets, vec![0, 0, 2, 2, 3, 3, 3, 3, 3]);
    }
}
