//! Vertex-state storage for the out-of-core engine.
//!
//! The paper's §3.2 optimization: when the entire vertex set fits in
//! the memory budget, the vertex array is kept in memory for the whole
//! run and never written back per phase. Otherwise each streaming
//! partition's vertex set lives in its own `vertices.p` file, loaded
//! before scatter/gather over that partition and written back after a
//! gather mutates it.

use xstream_core::record::{decode_records, records_as_bytes};
use xstream_core::{Partitioner, Record, Result, VertexId};
use xstream_storage::StreamStore;

/// Name of the vertex stream of partition `p`.
pub fn vertex_stream(p: usize) -> String {
    format!("vertices.{p}")
}

/// Where vertex state lives during a run.
pub enum VertexStorage<S> {
    /// §3.2 optimization 1: the whole vertex array stays in memory.
    InMemory(Vec<S>),
    /// One file per streaming partition.
    OnDisk,
}

impl<S: Record> VertexStorage<S> {
    /// Initializes storage for `partitioner.num_vertices()` states via
    /// `init`, spilling per-partition files unless `in_memory`.
    pub fn initialize(
        store: &StreamStore,
        partitioner: &Partitioner,
        in_memory: bool,
        mut init: impl FnMut(VertexId) -> S,
    ) -> Result<Self> {
        if in_memory {
            let states = (0..partitioner.num_vertices() as VertexId)
                .map(init)
                .collect();
            return Ok(VertexStorage::InMemory(states));
        }
        for p in partitioner.iter() {
            let states: Vec<S> = partitioner.range(p).map(|v| init(v as VertexId)).collect();
            store.write_replace(&vertex_stream(p), records_as_bytes(&states))?;
        }
        Ok(VertexStorage::OnDisk)
    }

    /// Loads the states of partition `p` for reading (scatter).
    pub fn load(
        &self,
        store: &StreamStore,
        partitioner: &Partitioner,
        p: usize,
    ) -> Result<PartitionStates<'_, S>> {
        match self {
            VertexStorage::InMemory(states) => {
                let range = partitioner.range(p);
                Ok(PartitionStates::Borrowed(&states[range]))
            }
            VertexStorage::OnDisk => {
                let bytes = store.read_all(&vertex_stream(p))?;
                Ok(PartitionStates::Owned(decode_records(&bytes)))
            }
        }
    }

    /// Loads the states of partition `p` for mutation (gather); call
    /// [`Self::store_back`] afterwards.
    pub fn load_mut(
        &mut self,
        store: &StreamStore,
        partitioner: &Partitioner,
        p: usize,
    ) -> Result<Vec<S>> {
        match self {
            VertexStorage::InMemory(states) => Ok(states[partitioner.range(p)].to_vec()),
            VertexStorage::OnDisk => {
                let bytes = store.read_all(&vertex_stream(p))?;
                Ok(decode_records(&bytes))
            }
        }
    }

    /// Writes mutated partition states back (a no-op write-back into
    /// the in-memory array under optimization 1; a file replace
    /// otherwise, as in Fig. 6's "write vertex set of p").
    pub fn store_back(
        &mut self,
        store: &StreamStore,
        partitioner: &Partitioner,
        p: usize,
        states: &[S],
    ) -> Result<()> {
        match self {
            VertexStorage::InMemory(all) => {
                let range = partitioner.range(p);
                all[range].copy_from_slice(states);
                Ok(())
            }
            VertexStorage::OnDisk => {
                store.write_replace(&vertex_stream(p), records_as_bytes(states))
            }
        }
    }

    /// Reads back the complete state vector in vertex order.
    pub fn collect_all(&self, store: &StreamStore, partitioner: &Partitioner) -> Result<Vec<S>> {
        match self {
            VertexStorage::InMemory(states) => Ok(states.clone()),
            VertexStorage::OnDisk => {
                let mut out = Vec::with_capacity(partitioner.num_vertices());
                for p in partitioner.iter() {
                    let bytes = store.read_all(&vertex_stream(p))?;
                    out.extend(decode_records::<S>(&bytes));
                }
                Ok(out)
            }
        }
    }
}

/// Partition states loaded for the scatter phase.
pub enum PartitionStates<'a, S> {
    /// Borrowed directly from the in-memory array.
    Borrowed(&'a [S]),
    /// Decoded from the partition's vertex file.
    Owned(Vec<S>),
}

impl<S> std::ops::Deref for PartitionStates<'_, S> {
    type Target = [S];

    fn deref(&self) -> &[S] {
        match self {
            PartitionStates::Borrowed(s) => s,
            PartitionStates::Owned(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> StreamStore {
        let root = std::env::temp_dir().join(format!("xstream_vstore_{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        StreamStore::new(&root, 4096).unwrap()
    }

    #[test]
    fn on_disk_roundtrip() {
        let st = store("ondisk");
        let part = Partitioner::new(100, 4);
        let mut vs = VertexStorage::<u64>::initialize(&st, &part, false, |v| v as u64 * 3).unwrap();
        let all = vs.collect_all(&st, &part).unwrap();
        assert_eq!(all.len(), 100);
        assert_eq!(all[10], 30);
        // Mutate one partition.
        let p = part.partition_of(10);
        let mut states = vs.load_mut(&st, &part, p).unwrap();
        let local = 10 - part.range(p).start;
        states[local] = 999;
        vs.store_back(&st, &part, p, &states).unwrap();
        let all = vs.collect_all(&st, &part).unwrap();
        assert_eq!(all[10], 999);
        st.destroy().unwrap();
    }

    #[test]
    fn in_memory_matches_on_disk() {
        let st = store("mem");
        let part = Partitioner::new(64, 8);
        let mut a = VertexStorage::<u32>::initialize(&st, &part, true, |v| v * v).unwrap();
        let mut b = VertexStorage::<u32>::initialize(&st, &part, false, |v| v * v).unwrap();
        for p in part.iter() {
            let sa = a.load_mut(&st, &part, p).unwrap();
            let sb = b.load_mut(&st, &part, p).unwrap();
            assert_eq!(sa, sb);
            let bumped: Vec<u32> = sa.iter().map(|x| x + 1).collect();
            a.store_back(&st, &part, p, &bumped).unwrap();
            b.store_back(&st, &part, p, &bumped).unwrap();
        }
        assert_eq!(
            a.collect_all(&st, &part).unwrap(),
            b.collect_all(&st, &part).unwrap()
        );
        st.destroy().unwrap();
    }

    #[test]
    fn load_borrows_in_memory() {
        let st = store("borrow");
        let part = Partitioner::new(16, 2);
        let vs = VertexStorage::<u32>::initialize(&st, &part, true, |v| v).unwrap();
        let loaded = vs.load(&st, &part, 1).unwrap();
        assert_eq!(
            &*loaded,
            &(part.range(1).map(|v| v as u32).collect::<Vec<_>>())[..]
        );
        st.destroy().unwrap();
    }
}
