//! Vertex-state storage for the out-of-core engine.
//!
//! The paper's §3.2 optimization: when the entire vertex set fits in
//! the memory budget, the vertex array is kept in memory for the whole
//! run and never written back per phase. Otherwise each streaming
//! partition's vertex set lives in its own `vertices.p` file, loaded
//! before scatter/gather over that partition and written back after a
//! gather mutates it.
//!
//! Gather mutates partition states through
//! [`VertexStorage::update_partition`], which is *in place* for the
//! in-memory case (no copy, no write-back, no allocation — part of the
//! engine's zero-allocation steady state) and decodes into pooled
//! scratch buffers for the on-disk case.

use xstream_core::record::{decode_records, records_as_bytes, RecordIter};
use xstream_core::{Partitioner, Record, Result, VertexId};
use xstream_storage::StreamStore;

/// Name of the vertex stream of partition `p`.
pub fn vertex_stream(p: usize) -> String {
    format!("vertices.{p}")
}

/// Where vertex state lives during a run.
pub enum VertexStorage<S> {
    /// §3.2 optimization 1: the whole vertex array stays in memory.
    InMemory(Vec<S>),
    /// One file per streaming partition, decoded through pooled
    /// scratch buffers (reused across partitions and supersteps).
    OnDisk {
        /// Decoded states of the partition being processed.
        scratch: Vec<S>,
        /// Raw-byte staging buffer for file loads.
        bytes: Vec<u8>,
        /// Interned stream names (one per partition): hot-path loads
        /// and write-backs never format a name.
        names: Vec<String>,
    },
}

impl<S: Record> VertexStorage<S> {
    /// Initializes storage for `partitioner.num_vertices()` states via
    /// `init`, spilling per-partition files unless `in_memory`.
    pub fn initialize(
        store: &StreamStore,
        partitioner: &Partitioner,
        in_memory: bool,
        mut init: impl FnMut(VertexId) -> S,
    ) -> Result<Self> {
        if in_memory {
            let states = (0..partitioner.num_vertices() as VertexId)
                .map(init)
                .collect();
            return Ok(VertexStorage::InMemory(states));
        }
        let names: Vec<String> = partitioner.iter().map(vertex_stream).collect();
        for p in partitioner.iter() {
            let states: Vec<S> = partitioner.range(p).map(|v| init(v as VertexId)).collect();
            store.write_replace(&names[p], records_as_bytes(&states))?;
        }
        Ok(VertexStorage::OnDisk {
            scratch: Vec::new(),
            bytes: Vec::new(),
            names,
        })
    }

    /// Loads the states of partition `p` for reading (scatter).
    ///
    /// Prefer [`Self::load_scatter`] on hot paths — this variant
    /// allocates a fresh decode vector in the on-disk case.
    pub fn load(
        &self,
        store: &StreamStore,
        partitioner: &Partitioner,
        p: usize,
    ) -> Result<PartitionStates<'_, S>> {
        match self {
            VertexStorage::InMemory(states) => {
                let range = partitioner.range(p);
                Ok(PartitionStates::Borrowed(&states[range]))
            }
            VertexStorage::OnDisk { names, .. } => {
                let bytes = store.read_all(&names[p])?;
                Ok(PartitionStates::Owned(decode_records(&bytes)))
            }
        }
    }

    /// Loads the states of partition `p` for reading (scatter),
    /// decoding on-disk partitions into the pooled scratch — the
    /// allocation-free variant of [`Self::load`] used by the superstep
    /// hot path.
    pub fn load_scatter(
        &mut self,
        store: &StreamStore,
        partitioner: &Partitioner,
        p: usize,
    ) -> Result<&[S]> {
        match self {
            VertexStorage::InMemory(states) => Ok(&states[partitioner.range(p)]),
            VertexStorage::OnDisk {
                scratch,
                bytes,
                names,
            } => {
                store.read_all_into(&names[p], bytes)?;
                scratch.clear();
                scratch.extend(RecordIter::<S>::new(bytes));
                Ok(scratch)
            }
        }
    }

    /// Mutable view of the whole in-memory vertex array, or `None`
    /// when states live in per-partition files. The parallel gather
    /// path uses this to hand disjoint partition sub-slices to pool
    /// workers (each partition's range is owned by exactly one worker,
    /// so the sub-slices never alias).
    pub fn in_memory_mut(&mut self) -> Option<&mut [S]> {
        match self {
            VertexStorage::InMemory(states) => Some(states),
            VertexStorage::OnDisk { .. } => None,
        }
    }

    /// Runs `f` over the mutable states of partition `p`; `f` returns
    /// whether it changed anything. In-memory states are mutated in
    /// place (nothing to write back); on-disk states are decoded into
    /// the pooled scratch and written back only when changed (Fig. 6's
    /// "write vertex set of p") — via truncate + append, so the cached
    /// file handle survives and the write-back allocates nothing.
    pub fn update_partition(
        &mut self,
        store: &StreamStore,
        partitioner: &Partitioner,
        p: usize,
        f: impl FnOnce(&mut [S]) -> Result<bool>,
    ) -> Result<bool> {
        match self {
            VertexStorage::InMemory(states) => f(&mut states[partitioner.range(p)]),
            VertexStorage::OnDisk {
                scratch,
                bytes,
                names,
            } => {
                store.read_all_into(&names[p], bytes)?;
                scratch.clear();
                scratch.extend(RecordIter::<S>::new(bytes));
                let changed = f(scratch)?;
                if changed {
                    store.truncate(&names[p])?;
                    store.append(&names[p], records_as_bytes(scratch))?;
                }
                Ok(changed)
            }
        }
    }

    /// Loads the states of partition `p` into an owned vector for
    /// mutation; call [`Self::store_back`] afterwards. Prefer
    /// [`Self::update_partition`] on hot paths — this variant copies
    /// even the in-memory case.
    pub fn load_mut(
        &mut self,
        store: &StreamStore,
        partitioner: &Partitioner,
        p: usize,
    ) -> Result<Vec<S>> {
        match self {
            VertexStorage::InMemory(states) => Ok(states[partitioner.range(p)].to_vec()),
            VertexStorage::OnDisk { names, .. } => {
                let bytes = store.read_all(&names[p])?;
                Ok(decode_records(&bytes))
            }
        }
    }

    /// Writes mutated partition states back (a copy into the in-memory
    /// array under optimization 1; a file replace otherwise).
    pub fn store_back(
        &mut self,
        store: &StreamStore,
        partitioner: &Partitioner,
        p: usize,
        states: &[S],
    ) -> Result<()> {
        match self {
            VertexStorage::InMemory(all) => {
                let range = partitioner.range(p);
                all[range].copy_from_slice(states);
                Ok(())
            }
            VertexStorage::OnDisk { names, .. } => {
                store.write_replace(&names[p], records_as_bytes(states))
            }
        }
    }

    /// Reads back the complete state vector in vertex order.
    pub fn collect_all(&self, store: &StreamStore, partitioner: &Partitioner) -> Result<Vec<S>> {
        match self {
            VertexStorage::InMemory(states) => Ok(states.clone()),
            VertexStorage::OnDisk { names, .. } => {
                let mut out = Vec::with_capacity(partitioner.num_vertices());
                for p in partitioner.iter() {
                    let bytes = store.read_all(&names[p])?;
                    out.extend(decode_records::<S>(&bytes));
                }
                Ok(out)
            }
        }
    }
}

/// Partition states loaded for the scatter phase.
pub enum PartitionStates<'a, S> {
    /// Borrowed directly from the in-memory array.
    Borrowed(&'a [S]),
    /// Decoded from the partition's vertex file.
    Owned(Vec<S>),
}

impl<S> std::ops::Deref for PartitionStates<'_, S> {
    type Target = [S];

    fn deref(&self) -> &[S] {
        match self {
            PartitionStates::Borrowed(s) => s,
            PartitionStates::Owned(v) => v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> StreamStore {
        let root = std::env::temp_dir().join(format!("xstream_vstore_{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        StreamStore::new(&root, 4096).unwrap()
    }

    #[test]
    fn on_disk_roundtrip() {
        let st = store("ondisk");
        let part = Partitioner::new(100, 4);
        let mut vs = VertexStorage::<u64>::initialize(&st, &part, false, |v| v as u64 * 3).unwrap();
        let all = vs.collect_all(&st, &part).unwrap();
        assert_eq!(all.len(), 100);
        assert_eq!(all[10], 30);
        // Mutate one partition.
        let p = part.partition_of(10);
        let mut states = vs.load_mut(&st, &part, p).unwrap();
        let local = 10 - part.range(p).start;
        states[local] = 999;
        vs.store_back(&st, &part, p, &states).unwrap();
        let all = vs.collect_all(&st, &part).unwrap();
        assert_eq!(all[10], 999);
        st.destroy().unwrap();
    }

    #[test]
    fn in_memory_matches_on_disk() {
        let st = store("mem");
        let part = Partitioner::new(64, 8);
        let mut a = VertexStorage::<u32>::initialize(&st, &part, true, |v| v * v).unwrap();
        let mut b = VertexStorage::<u32>::initialize(&st, &part, false, |v| v * v).unwrap();
        for p in part.iter() {
            let sa = a.load_mut(&st, &part, p).unwrap();
            let sb = b.load_mut(&st, &part, p).unwrap();
            assert_eq!(sa, sb);
            let bumped: Vec<u32> = sa.iter().map(|x| x + 1).collect();
            a.store_back(&st, &part, p, &bumped).unwrap();
            b.store_back(&st, &part, p, &bumped).unwrap();
        }
        assert_eq!(
            a.collect_all(&st, &part).unwrap(),
            b.collect_all(&st, &part).unwrap()
        );
        st.destroy().unwrap();
    }

    #[test]
    fn update_partition_agrees_across_storage_kinds() {
        let st = store("update");
        let part = Partitioner::new(48, 4);
        let mut a = VertexStorage::<u32>::initialize(&st, &part, true, |v| v).unwrap();
        let mut b = VertexStorage::<u32>::initialize(&st, &part, false, |v| v).unwrap();
        for p in part.iter() {
            for vs in [&mut a, &mut b] {
                let changed = vs
                    .update_partition(&st, &part, p, |states| {
                        for s in states.iter_mut() {
                            *s *= 2;
                        }
                        Ok(true)
                    })
                    .unwrap();
                assert!(changed);
            }
        }
        let all_a = a.collect_all(&st, &part).unwrap();
        assert_eq!(all_a, b.collect_all(&st, &part).unwrap());
        assert_eq!(all_a[13], 26);
        st.destroy().unwrap();
    }

    #[test]
    fn unchanged_update_skips_write_back() {
        let st = store("nowrite");
        let part = Partitioner::new(16, 2);
        let mut vs = VertexStorage::<u32>::initialize(&st, &part, false, |v| v).unwrap();
        let before = st.accounting().snapshot().bytes_written();
        let changed = vs.update_partition(&st, &part, 0, |_| Ok(false)).unwrap();
        assert!(!changed);
        assert_eq!(st.accounting().snapshot().bytes_written(), before);
        st.destroy().unwrap();
    }

    #[test]
    fn in_memory_update_is_in_place_and_allocation_free() {
        let st = store("inplace");
        let part = Partitioner::new(1024, 4);
        let mut vs = VertexStorage::<u64>::initialize(&st, &part, true, |v| v as u64).unwrap();
        let clean = xstream_core::alloc_stats::any_allocation_free_window(50, || {
            for p in part.iter() {
                vs.update_partition(&st, &part, p, |states| {
                    for s in states.iter_mut() {
                        *s += 1;
                    }
                    Ok(true)
                })
                .unwrap();
            }
        });
        assert!(
            clean,
            "in-memory update_partition allocated in every window"
        );
        let all = vs.collect_all(&st, &part).unwrap();
        assert!(all.iter().enumerate().all(|(v, &s)| s > v as u64));
        st.destroy().unwrap();
    }

    #[test]
    fn load_borrows_in_memory() {
        let st = store("borrow");
        let part = Partitioner::new(16, 2);
        let vs = VertexStorage::<u32>::initialize(&st, &part, true, |v| v).unwrap();
        let loaded = vs.load(&st, &part, 1).unwrap();
        assert_eq!(
            &*loaded,
            &(part.range(1).map(|v| v as u32).collect::<Vec<_>>())[..]
        );
        st.destroy().unwrap();
    }
}
