//! The `xstream` subcommands.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::args::{Args, CliError};
use xstream_algorithms::{
    bfs, conductance, mcst, mis, pagerank, pagerank_delta, scc, spmv, sssp, wcc,
};
use xstream_core::{DeviceMap, EngineConfig, PinMode, RetryPolicy, RunStats};
use xstream_disk::{DiskEngine, EdgeIngest};
use xstream_graph::fileio::{read_edge_file, write_edge_file, EdgeFileReader};
use xstream_graph::import::{ImportFormat, ImportOptions};
use xstream_graph::{generators, transform, EdgeList, Rmat};
use xstream_memory::InMemoryEngine;
use xstream_storage::StreamStore;
use xstream_streams::{semi, wstream, FileSource, Mirrored};

/// Top-level usage text. Every flag of every subcommand is documented
/// here — this is the reference the README points at.
pub fn usage() -> String {
    "xstream - edge-centric graph processing (X-Stream, SOSP'13)

Options take `--flag VALUE` or `--flag=VALUE`; sizes accept K/M/G
suffixes (powers of two, e.g. 64K, 16M, 2G).

USAGE:
  xstream generate <kind> [options] -o FILE
      Write a synthetic binary edge file.
      kinds: rmat, erdos-renyi, pref-attach, grid, web, bipartite
      --scale N        rmat only: 2^N vertices (paper's graph sizing)
      --vertices N     vertex count (all kinds except rmat)
      --edges N        edge count (erdos-renyi, bipartite; default
                       derives from --degree)
      --degree N       average/out degree knob (rmat edge factor,
                       pref-attach/web attachment degree; default 8/16)
      --seed N         RNG seed (default 42)
      --undirected     add the reverse of every edge
      --weighted       assign uniform random weights in [0, 1)
      -o, --output F   output path (required)

  xstream info <FILE>
      Print header and degree statistics of a binary edge file
      (computed in one streaming pass; the edge list is never loaded).

  xstream import <SRC> <DST> [options]
      Convert an external edge list into the binary .xse format,
      streaming: bounded memory, text chunks parsed in parallel.
      --format F           snap: whitespace text `src dst [weight]`
                           with # / % comments and blank lines
                           (default); pairs32 / pairs64: raw
                           little-endian id pairs, 8/16 bytes per edge
      --num-vertices N     declare the vertex count instead of
                           discovering max id + 1
      --undirected         also write the reverse of every edge
      --threads N          parser threads (default: all cores)

  xstream run <algo> <FILE> [options]
      Run an algorithm over an edge file on either engine.
      algos: wcc, bfs, sssp, pagerank, pagerank-delta, spmv, mis, scc,
             mcst, conductance
      --engine mem|disk    in-memory (§4) or out-of-core (§3) engine
                           (default mem). The disk engine streams the
                           file straight into its partition shuffle —
                           undirected/bidirectional expansion and
                           degree scans included — and never holds the
                           edge list in memory (§3.2)
      --threads N          worker threads (default: all cores)
      --pin-workers MODE   off|cores|nodes: pin pool workers (and the
                           disk engine's per-device I/O threads) to
                           cores or NUMA nodes so the shuffle slice a
                           worker owns stays node-local (Fig. 14).
                           Default off; silently a no-op on 1-CPU or
                           affinity-restricted environments
      --gather-threads N   cap the disk engine's parallel gather lanes
                           (1 = serial, the paper's base design;
                           default: --threads)
      --partitions K       force the streaming partition count instead
                           of the automatic §3.4 / §4 sizing
      --memory-budget SIZE out-of-core fast-storage budget M (default 1G)
      --io-unit SIZE       preferred I/O unit S (default 16M, §3.4)
      --device-map MAP     edges=N,updates=M[,vertices=P]: place the
                           out-of-core stream families on separate
                           devices (Fig. 15); one reader and one writer
                           thread are striped per device
      --iterations N       iteration-capped algorithms (pagerank,
                           pagerank-delta): rounds to run (default 5)
      --epsilon X          pagerank-delta: activation tolerance — a
                           vertex re-scatters only when its damped
                           incoming delta exceeds X (default 1e-7;
                           0 = propagate every nonzero delta)
      --frontier-threshold D
                           frontier-tracked algorithms (bfs, sssp, wcc,
                           mis, pagerank-delta) on the disk engine:
                           dense/sparse hybrid-switch divisor — a
                           partition scatters through its vertex->edge
                           index when active_edges * D < |E_p| (Ligra's
                           rule; default 20; 0 forces sparse, a huge D
                           forces dense)
      --no-frontier-skip   disable frontier-aware scatter entirely:
                           stream every partition densely even for
                           frontier-tracked programs (the paper's
                           baseline behaviour; useful for A/B timing)
      --root V             source vertex for bfs/sssp (default 0; must
                           be below the graph's vertex count)
      --store DIR          disk engine: directory for partition streams
                           (default: a fresh unique temp directory,
                           removed afterwards). An existing DIR is
                           wiped only if it is empty or carries the
                           .xstream-store marker from a previous run;
                           anything else is refused
      --max-retries N      disk engine: re-run a superstep up to N extra
                           times after a transient I/O error (EINTR,
                           EIO, EAGAIN, timeouts), with exponential
                           backoff; permanent errors (ENOSPC,
                           permissions) always fail fast (default 2)
      --checkpoint-every N disk engine: after every N completed
                           supersteps, persist vertex state as a
                           CRC-checksummed checkpoint frame in the
                           store directory (crash-atomic two-slot
                           write; 0 = off, the default). Use with an
                           explicit --store so the checkpoint survives
                           the process
      --resume             disk engine: restore the newest valid
                           checkpoint from --store (torn or foreign
                           frames are rejected by CRC/fingerprint) and
                           skip the already-completed supersteps;
                           requires --engine disk and --store, keeps
                           the store directory's checkpoint files
                           instead of wiping them. Resuming under
                           changed layout flags (--partitions,
                           --io-unit, ...) fails naming the flag
      --no-verify-reads    disk engine: trust mode — skip per-chunk
                           checksum verification on durable-stream
                           reads (verification is on by default; the
                           write-side checksums are maintained either
                           way, so a later scrub still works)

  xstream scrub <STORE> [--repair]
      Verify every durable stream of a partition store (written by
      `run --engine disk --store DIR`) against its MANIFEST: sidecar
      authenticity, one CRC per I/O-unit chunk, and checkpoint frame
      structure. Detecting damage exits nonzero.
      --repair             rebuild what is derivable (sparse-scatter
                           indexes from their verified edge streams,
                           rotted sidecars over intact streams) and
                           quarantine the rest (*.quarantined, never
                           deleted); re-seals the manifest

  xstream serve <FILE> [options]
      Serve the graph as a long-lived query process: ingest once,
      answer concurrent queries over a line-delimited JSON protocol on
      a TCP socket (one request object per line, one response line
      each; ops: bfs, sssp, reach, same-component, components,
      pagerank, stats, ping). Queued BFS/SSSP queries are batched into
      one multi-source frontier pass — one edge stream serves the
      whole batch — and results are cached by (query, store manifest
      generation), so a re-ingest or scrub --repair invalidates stale
      entries. SIGTERM/SIGINT drains the queue and exits 0.
      --engine mem|disk    engine backing the queries (memory accepted
                           as an alias for mem; default mem). disk
                           namespaces per-query-family sub-stores
                           under the store directory
      --port N             TCP port on 127.0.0.1 (default 0 = pick an
                           ephemeral port; the chosen address is
                           printed on startup)
      --max-inflight N     queued-plus-running query bound; admission
                           beyond it answers an overload error
                           (default 32)
      --query-timeout MS   per-query deadline in milliseconds; a
                           slower answer becomes a clean timeout error
                           (default 30000)
      --cache-entries N    LRU result-cache capacity in entries
                           (0 disables; default 256)
      --iterations N       default pagerank rounds when a query does
                           not specify (default 5)
      plus the `run` engine flags: --threads, --partitions,
      --memory-budget, --io-unit, --store, --frontier-threshold,
      --no-frontier-skip, --no-verify-reads, ...

  xstream components <FILE> --model semi|wstream [--capacity N]
      Connected components in the alternative streaming models. The
      edge file is streamed (with on-the-fly undirected mirroring) —
      never loaded into memory.
      --model semi|wstream semi-streaming (1 pass, O(V) memory) or
                           W-Stream (bounded passes; default semi)
      --capacity N         wstream only: per-pass edge memory
                           (default 65536)

  xstream help
      Print this text.
"
    .to_string()
}

// ---------------------------------------------------------------- generate

/// `xstream generate <kind> ... -o FILE`.
pub fn generate(args: &Args) -> Result<String, CliError> {
    let kind = args.require_positional(0, "generator kind (e.g. rmat)")?;
    let out = args
        .get("output")
        .ok_or_else(|| CliError::Usage("missing -o OUTPUT".into()))?;
    let seed = args.get_usize("seed")?.unwrap_or(42) as u64;
    let mut graph = match kind {
        "rmat" => {
            let scale = args
                .get_usize("scale")?
                .ok_or_else(|| CliError::Usage("rmat needs --scale".into()))?
                as u32;
            let mut r = Rmat::new(scale).with_seed(seed);
            if let Some(d) = args.get_usize("degree")? {
                r = r.with_edge_factor(d);
            }
            r.generate()
        }
        "erdos-renyi" => {
            let v = args
                .get_usize("vertices")?
                .ok_or_else(|| CliError::Usage("erdos-renyi needs --vertices".into()))?;
            let e = args
                .get_usize("edges")?
                .unwrap_or(v.saturating_mul(args.get_usize("degree")?.unwrap_or(8)));
            generators::erdos_renyi(v, e, seed)
        }
        "pref-attach" => {
            let v = args
                .get_usize("vertices")?
                .ok_or_else(|| CliError::Usage("pref-attach needs --vertices".into()))?;
            generators::preferential_attachment(v, args.get_usize("degree")?.unwrap_or(8), seed)
        }
        "grid" => {
            let v = args
                .get_usize("vertices")?
                .ok_or_else(|| CliError::Usage("grid needs --vertices".into()))?;
            let side = (v as f64).sqrt().ceil() as usize;
            generators::grid2d(side.max(2), side.max(2))
        }
        "web" => {
            let v = args
                .get_usize("vertices")?
                .ok_or_else(|| CliError::Usage("web needs --vertices".into()))?;
            generators::webgraph(v, args.get_usize("degree")?.unwrap_or(16), 64, seed)
        }
        "bipartite" => {
            let v = args
                .get_usize("vertices")?
                .ok_or_else(|| CliError::Usage("bipartite needs --vertices".into()))?;
            let users = (v * 24) / 25;
            let e = args.get_usize("edges")?.unwrap_or(v * 16);
            generators::bipartite(users.max(2), (v - users).max(1), e, seed)
        }
        other => return Err(CliError::Usage(format!("unknown generator `{other}`"))),
    };
    if args.switch("undirected") {
        graph = graph.to_undirected();
    }
    if args.switch("weighted") {
        use rand_seed::SimpleRng;
        let mut rng = SimpleRng::new(seed ^ 0x5eed);
        for e in graph.edges_mut() {
            e.weight = rng.next_unit_f32();
        }
    }
    write_edge_file(Path::new(out), &graph)?;
    Ok(format!(
        "wrote {} vertices, {} edges to {out}\n",
        graph.num_vertices(),
        graph.num_edges()
    ))
}

/// Tiny xorshift RNG so `--weighted` needs no external dependency in
/// this crate.
mod rand_seed {
    /// Xorshift64* generator.
    pub struct SimpleRng(u64);

    impl SimpleRng {
        /// Seeds the generator (zero is remapped).
        pub fn new(seed: u64) -> Self {
            Self(seed.max(1))
        }

        /// Next float in `[0, 1)`.
        pub fn next_unit_f32(&mut self) -> f32 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 40) as f32 / (1u64 << 24) as f32
        }
    }
}

// -------------------------------------------------------------------- info

/// `xstream info FILE` — one streaming pass, O(V) memory.
pub fn info(args: &Args) -> Result<String, CliError> {
    let path = args.require_positional(0, "edge file")?;
    let i = transform::streamed_info(Path::new(path))?;
    let mut s = String::new();
    let _ = writeln!(s, "file:        {path}");
    let _ = writeln!(s, "vertices:    {}", i.num_vertices);
    let _ = writeln!(s, "edges:       {}", i.num_edges);
    let _ = writeln!(
        s,
        "avg degree:  {:.2}",
        i.num_edges as f64 / i.num_vertices.max(1) as f64
    );
    let _ = writeln!(s, "max out-deg: {}", i.max_out_degree);
    let _ = writeln!(s, "isolated:    {}", i.isolated);
    let _ = writeln!(s, "self loops:  {}", i.self_loops);
    Ok(s)
}

// ------------------------------------------------------------------ import

/// `xstream import <SRC> <DST> [--format F] [--num-vertices N]
/// [--undirected] [--threads N]`.
pub fn import(args: &Args) -> Result<String, CliError> {
    let src = args.require_positional(0, "source file")?;
    let dst = args.require_positional(1, "output edge file")?;
    let format = match args.get("format") {
        Some(f) => ImportFormat::parse(f).ok_or_else(|| {
            CliError::Usage(format!("--format expects snap|pairs32|pairs64, got `{f}`"))
        })?,
        None => ImportFormat::SnapText,
    };
    let mut opts = ImportOptions {
        format,
        num_vertices: args.get_usize("num-vertices")?,
        undirected: args.switch("undirected"),
        ..ImportOptions::default()
    };
    if let Some(t) = args.get_usize("threads")? {
        opts.threads = t.max(1);
    }
    let r = xstream_graph::import::import(Path::new(src), Path::new(dst), &opts)?;
    let skipped = if r.skipped_lines > 0 {
        format!(" ({} comment/blank lines skipped)", r.skipped_lines)
    } else {
        String::new()
    };
    Ok(format!(
        "imported {} edges over {} vertices to {dst}{skipped}\n",
        r.num_edges, r.num_vertices
    ))
}

// --------------------------------------------------------------------- run

fn engine_config(args: &Args) -> Result<EngineConfig, CliError> {
    let mut cfg = EngineConfig::default();
    if let Some(t) = args.get_usize("threads")? {
        cfg = cfg.with_threads(t);
    }
    if let Some(t) = args.get_usize("gather-threads")? {
        cfg = cfg.with_gather_threads(t);
    }
    if let Some(k) = args.get_usize("partitions")? {
        cfg = cfg.with_partitions(k);
    }
    if let Some(b) = args.get_bytes("memory-budget")? {
        cfg = cfg.with_memory_budget(b);
    }
    if let Some(u) = args.get_bytes("io-unit")? {
        cfg = cfg.with_io_unit(u);
    }
    if let Some(m) = args.get("device-map") {
        let map = DeviceMap::parse(m).ok_or_else(|| {
            CliError::Usage(format!(
                "--device-map expects edges=N,updates=M[,vertices=P], got `{m}`"
            ))
        })?;
        cfg = cfg.with_device_map(map);
    }
    if let Some(p) = args.get("pin-workers") {
        let mode = PinMode::parse(p).ok_or_else(|| {
            CliError::Usage(format!("--pin-workers expects off|cores|nodes, got `{p}`"))
        })?;
        cfg = cfg.with_pinning(mode);
    }
    if let Some(r) = args.get_usize("max-retries")? {
        // N *extra* attempts after the first = N + 1 total.
        cfg = cfg.with_retry(RetryPolicy {
            max_attempts: r as u32 + 1,
            ..RetryPolicy::default()
        });
    }
    if let Some(n) = args.get_usize("checkpoint-every")? {
        cfg = cfg.with_checkpoint_every(n);
    }
    if let Some(d) = args.get_usize("frontier-threshold")? {
        cfg = cfg.with_frontier_threshold(d);
    }
    if args.switch("no-frontier-skip") {
        cfg = cfg.with_frontier_skip(false);
    }
    if args.switch("no-verify-reads") {
        cfg = cfg.with_verify_reads(false);
    }
    Ok(cfg)
}

fn summarize(algo: &str, extra: &str, stats: &RunStats) -> String {
    let t = stats.totals();
    let mut s = format!(
        "{algo}: {extra}\niterations: {}, runtime: {:.3}s, edges streamed: {}, \
         updates: {} (wasted {:.0}%)\n",
        stats.num_iterations(),
        stats.elapsed().as_secs_f64(),
        t.edges_streamed,
        t.updates_generated,
        stats.wasted_pct(),
    );
    if t.shuffle_capacity > 0 {
        let _ = writeln!(
            s,
            "shuffle buffers: {} records capacity (peak residency {:.0}%, \
             adaptive budget {} records/slice)",
            t.shuffle_capacity,
            t.buffer_residency_pct(),
            t.shuffle_budget,
        );
    }
    if t.partitions_skipped > 0 || t.partitions_sparse > 0 {
        let _ = writeln!(
            s,
            "frontier: {} partition streams skipped, {} scattered sparse \
             (peak density {:.1}%)",
            t.partitions_skipped,
            t.partitions_sparse,
            t.frontier_density * 100.0,
        );
    }
    if t.chunks_verified > 0 || t.corruptions_detected > 0 {
        let _ = writeln!(
            s,
            "integrity: {} chunks verified on read, {} corruptions detected",
            t.chunks_verified, t.corruptions_detected,
        );
    }
    s
}

/// Parses `--epsilon` for pagerank-delta: a non-negative finite float
/// (default 1e-7). Zero propagates every nonzero delta (the exact
/// untruncated series).
fn epsilon(args: &Args) -> Result<f32, CliError> {
    match args.get("epsilon") {
        None => Ok(1e-7),
        Some(v) => v
            .parse::<f32>()
            .ok()
            .filter(|e| *e >= 0.0 && e.is_finite())
            .ok_or_else(|| {
                CliError::Usage(format!(
                    "--epsilon expects a non-negative number, got `{v}`"
                ))
            }),
    }
}

/// Validates `--root` for the traversal algorithms before any engine
/// is built: an out-of-range root is a usage error with the valid
/// range, not a panic deep inside scatter.
fn validated_root(args: &Args, algo: &str, num_vertices: usize) -> Result<u32, CliError> {
    let root = args.get_usize("root")?.unwrap_or(0);
    if matches!(algo, "bfs" | "sssp") && root >= num_vertices {
        return Err(CliError::Usage(if num_vertices == 0 {
            format!("--root {root}: the graph has no vertices")
        } else {
            format!(
                "--root {root} is outside the graph's vertex range \
                 (valid roots: 0..={})",
                num_vertices - 1
            )
        }));
    }
    Ok(root as u32)
}

/// Marker file stamped into every partition-store directory the CLI
/// creates; wiping a `--store` directory requires it (or an empty
/// directory), so a typo'd path never deletes unrelated data.
pub const STORE_MARKER: &str = ".xstream-store";

/// A prepared partition-store directory. The default (CLI-chosen)
/// temp location is unique per invocation — concurrent `xstream run`
/// processes cannot clobber each other's partition files — and removes
/// itself on drop; an explicit `--store DIR` is kept.
struct StoreDir {
    path: PathBuf,
    ephemeral: bool,
}

impl StoreDir {
    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for StoreDir {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}

fn create_marked(dir: &Path) -> Result<(), CliError> {
    std::fs::create_dir_all(dir)
        .and_then(|()| std::fs::write(dir.join(STORE_MARKER), b"xstream partition store\n"))
        .map_err(|e| CliError::Run(format!("creating store directory {}: {e}", dir.display())))
}

/// Resolves the disk engine's partition-store directory: an explicit
/// `--store DIR` is wiped only when that is provably safe (empty, or
/// marked as an xstream store by a previous run); with `--resume` a
/// marked directory is *kept* instead — its checkpoint frames are the
/// whole point (edge/update streams are rebuilt by ingest either way);
/// the default is a fresh unique temp directory.
fn prepare_store_dir(args: &Args) -> Result<StoreDir, CliError> {
    if let Some(dir) = args.get("store") {
        let dir = PathBuf::from(dir);
        if dir.exists() {
            if !dir.is_dir() {
                return Err(CliError::Run(format!(
                    "--store {}: exists and is not a directory",
                    dir.display()
                )));
            }
            let non_empty = std::fs::read_dir(&dir)
                .map(|mut it| it.next().is_some())
                .unwrap_or(false);
            if non_empty && !dir.join(STORE_MARKER).is_file() {
                return Err(CliError::Run(format!(
                    "--store {}: refusing to wipe a non-empty directory without an \
                     {STORE_MARKER} marker (it was not created by xstream run); \
                     pass an empty directory or remove it yourself",
                    dir.display()
                )));
            }
            if args.switch("resume") && dir.join(STORE_MARKER).is_file() {
                return Ok(StoreDir {
                    path: dir,
                    ephemeral: false,
                });
            }
            std::fs::remove_dir_all(&dir)
                .map_err(|e| CliError::Run(format!("--store {}: {e}", dir.display())))?;
        }
        create_marked(&dir)?;
        Ok(StoreDir {
            path: dir,
            ephemeral: false,
        })
    } else {
        let base = std::env::temp_dir();
        let pid = std::process::id();
        let mut attempt = 0u32;
        loop {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0);
            let dir = base.join(format!("xstream_run_{pid}_{nanos:09}_{attempt}"));
            match std::fs::create_dir(&dir) {
                Ok(()) => {
                    std::fs::write(dir.join(STORE_MARKER), b"xstream partition store\n")
                        .map_err(|e| CliError::Run(format!("marking store directory: {e}")))?;
                    return Ok(StoreDir {
                        path: dir,
                        ephemeral: true,
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists && attempt < 1000 => {
                    attempt += 1;
                }
                Err(e) => {
                    return Err(CliError::Run(format!(
                        "creating store directory {}: {e}",
                        dir.display()
                    )))
                }
            }
        }
    }
}

/// `xstream run <algo> <FILE> ...`.
pub fn run(args: &Args) -> Result<String, CliError> {
    let algo = args.require_positional(0, "algorithm")?.to_string();
    let path = args.require_positional(1, "edge file")?.to_string();
    let engine_kind = args.get("engine").unwrap_or("mem");
    let iterations = args.get_usize("iterations")?.unwrap_or(5);
    let eps = epsilon(args)?;
    let resume = args.switch("resume");
    // Declared on the engine config too, so the disk engine validates
    // the layout flags against the store's manifest *before* the
    // rebuild replaces it (a mismatch then names the flag while the
    // original layout record is still on disk).
    let cfg = engine_config(args)?.with_resume(resume);
    if resume {
        if engine_kind != "disk" {
            return Err(CliError::Usage(
                "--resume requires --engine disk (checkpoints live in the \
                 partition store)"
                    .into(),
            ));
        }
        if args.get("store").is_none() {
            return Err(CliError::Usage(
                "--resume requires an explicit --store DIR (the default store \
                 is a fresh temp directory with nothing to resume from)"
                    .into(),
            ));
        }
    }

    match engine_kind {
        "mem" => {
            let graph = read_edge_file(Path::new(&path))?;
            let root = validated_root(args, &algo, graph.num_vertices())?;
            run_in_memory(&algo, &graph, cfg, root, iterations, eps)
        }
        "disk" => {
            // Header-only peek: the vertex count for root validation
            // and vertex-state sizing. The edge payload itself is
            // streamed by the engine — never materialized (§3).
            let num_vertices = EdgeFileReader::open(Path::new(&path))?.num_vertices();
            let root = validated_root(args, &algo, num_vertices)?;
            let dir = prepare_store_dir(args)?;
            let mut store = StreamStore::new(dir.path(), cfg.io_unit)?;
            if let Some(map) = cfg.device_map {
                // Fig. 15 layout: the engine stripes one reader and one
                // writer thread per declared device.
                store = store.with_device_fn(map.num_devices(), move |name| map.device_of(name));
            }
            let out = run_on_disk(
                &algo,
                Path::new(&path),
                num_vertices,
                store,
                cfg,
                root,
                iterations,
                eps,
                resume,
            );
            drop(dir); // Removes the default temp store; keeps --store.
            out
        }
        other => Err(CliError::Usage(format!(
            "--engine must be mem or disk, got `{other}`"
        ))),
    }
}

fn run_in_memory(
    algo: &str,
    graph: &EdgeList,
    cfg: EngineConfig,
    root: u32,
    iterations: usize,
    eps: f32,
) -> Result<String, CliError> {
    match algo {
        "wcc" => {
            let und = graph.to_undirected();
            let p = wcc::Wcc::new();
            let mut e = InMemoryEngine::from_graph(&und, &p, cfg);
            let (labels, stats) = wcc::run(&mut e, &p);
            Ok(summarize(
                algo,
                &format!("{} components", wcc::count_components(&labels)),
                &stats,
            ))
        }
        "bfs" => {
            let p = bfs::Bfs::new();
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            let (levels, stats) = bfs::run(&mut e, &p, root);
            let reached = levels.iter().filter(|&&l| l != bfs::UNREACHED).count();
            Ok(summarize(
                algo,
                &format!("{reached} vertices reached"),
                &stats,
            ))
        }
        "sssp" => {
            let p = sssp::Sssp::new();
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            let (dist, stats) = sssp::run(&mut e, &p, root);
            let reached = dist.iter().filter(|d| d.is_finite()).count();
            Ok(summarize(
                algo,
                &format!("{reached} vertices reachable"),
                &stats,
            ))
        }
        "pagerank" => {
            let p = pagerank::Pagerank;
            let degrees = graph.out_degrees();
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            let (ranks, stats) = pagerank::run(&mut e, &p, &degrees, iterations);
            let top = ranks
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(v, r)| format!("top vertex {v} (rank {r:.6})"))
                .unwrap_or_default();
            Ok(summarize(algo, &top, &stats))
        }
        "pagerank-delta" => {
            let p = pagerank_delta::PagerankDelta::new(eps);
            let degrees = graph.out_degrees();
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            let (ranks, stats) = pagerank_delta::run(&mut e, &p, &degrees, iterations);
            let top = ranks
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(v, r)| format!("top vertex {v} (rank {r:.6})"))
                .unwrap_or_default();
            Ok(summarize(algo, &top, &stats))
        }
        "spmv" => {
            let p = spmv::Spmv;
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            let x = vec![1.0f32; graph.num_vertices()];
            let (y, it) = spmv::run(&mut e, &p, &x);
            let stats = RunStats {
                iterations: vec![it],
                total_ns: 0,
            };
            let norm: f64 = y.iter().map(|v| f64::from(*v) * f64::from(*v)).sum();
            Ok(summarize(algo, &format!("|y|^2 = {norm:.3}"), &stats))
        }
        "mis" => {
            let und = graph.to_undirected();
            let p = mis::Mis::new();
            let mut e = InMemoryEngine::from_graph(&und, &p, cfg);
            let (statuses, stats) = mis::run(&mut e, &p);
            let members = statuses
                .iter()
                .filter(|&&s| s == mis::status::IN_SET)
                .count();
            Ok(summarize(algo, &format!("{members} members"), &stats))
        }
        "scc" => {
            let bidir = graph.to_bidirectional();
            let p = scc::Scc::new();
            let mut e = InMemoryEngine::from_graph(&bidir, &p, cfg);
            let (ids, stats) = scc::run(&mut e, &p);
            let mut distinct = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            Ok(summarize(
                algo,
                &format!("{} strongly connected components", distinct.len()),
                &stats,
            ))
        }
        "mcst" => {
            let und = graph.to_undirected();
            let p = mcst::Mcst;
            let mut e = InMemoryEngine::from_graph(&und, &p, cfg);
            let (result, stats) = mcst::run(&mut e, &p);
            Ok(summarize(
                algo,
                &format!(
                    "forest weight {:.3} over {} trees",
                    result.total_weight, result.components
                ),
                &stats,
            ))
        }
        "conductance" => {
            let p = conductance::Conductance;
            let mut e = InMemoryEngine::from_graph(graph, &p, cfg);
            let (r, it) = conductance::run(&mut e, &p, &|v| v & 1);
            let stats = RunStats {
                iterations: vec![it],
                total_ns: 0,
            };
            Ok(summarize(
                algo,
                &format!("cut {} / volumes {} : {}", r.cut, r.vol0, r.vol1),
                &stats,
            ))
        }
        other => Err(CliError::Usage(format!("unknown algorithm `{other}`"))),
    }
}

/// Applies `--resume` before a disk-engine run: restores the newest
/// valid checkpoint (both slots are CRC- and fingerprint-validated)
/// and returns a status line to prepend to the command output. A
/// missing or invalid checkpoint is not an error — the run simply
/// starts fresh and says so.
fn maybe_resume<P: xstream_core::EdgeProgram>(
    e: &mut DiskEngine<P>,
    resume: bool,
) -> Result<String, CliError> {
    if !resume {
        return Ok(String::new());
    }
    Ok(match e.resume_from_checkpoint()? {
        Some(step) => format!("resumed from checkpoint after superstep {step}\n"),
        None => "no valid checkpoint in store; starting fresh\n".to_string(),
    })
}

/// Runs an algorithm on the out-of-core engine. Every arm builds its
/// engine from a path-based [`EdgeIngest`] descriptor — the file is
/// streamed into the partition shuffle with any undirected or
/// bidirectional doubling applied per chunk (§3.2 pre-processing), so
/// the full `EdgeList` is never constructed. The only vertex-indexed
/// allocations are the O(V) arrays §3.1 budgets to memory (degrees for
/// PageRank, the SpMV input vector).
// One flag per paper knob; bundling them into a struct would only move
// the argument list into a literal at the lone call site.
#[allow(clippy::too_many_arguments)]
fn run_on_disk(
    algo: &str,
    input: &Path,
    num_vertices: usize,
    store: StreamStore,
    cfg: EngineConfig,
    root: u32,
    iterations: usize,
    eps: f32,
    resume: bool,
) -> Result<String, CliError> {
    match algo {
        "wcc" => {
            let p = wcc::Wcc::new();
            let mut e = DiskEngine::from_ingest(store, &EdgeIngest::undirected(input), &p, cfg)?;
            let pre = maybe_resume(&mut e, resume)?;
            let (labels, stats) = wcc::run(&mut e, &p);
            let io = e.store().accounting().snapshot();
            Ok(format!(
                "{pre}{}io: {:.1} MB read, {:.1} MB written\n",
                summarize(
                    algo,
                    &format!("{} components", wcc::count_components(&labels)),
                    &stats
                ),
                io.bytes_read() as f64 / 1e6,
                io.bytes_written() as f64 / 1e6,
            ))
        }
        "bfs" => {
            let p = bfs::Bfs::new();
            let mut e = DiskEngine::from_ingest(store, &EdgeIngest::new(input), &p, cfg)?;
            let pre = maybe_resume(&mut e, resume)?;
            let (levels, stats) = bfs::run(&mut e, &p, root);
            let reached = levels.iter().filter(|&&l| l != bfs::UNREACHED).count();
            Ok(format!(
                "{pre}{}",
                summarize(algo, &format!("{reached} vertices reached"), &stats)
            ))
        }
        "pagerank" => {
            let p = pagerank::Pagerank;
            // The O(V) out-degree counts fold into the ingest pass via
            // the per-chunk observer — one streaming read of the edge
            // file instead of the former separate degree scan + ingest
            // double read.
            let degrees = std::sync::Arc::new(std::sync::Mutex::new(vec![0u32; num_vertices]));
            let ingest = {
                let degrees = std::sync::Arc::clone(&degrees);
                EdgeIngest::new(input).with_observer(move |chunk| {
                    let mut d = degrees.lock().expect("degree counter poisoned");
                    for e in chunk {
                        d[e.src as usize] += 1;
                    }
                })
            };
            let mut e = DiskEngine::from_ingest(store, &ingest, &p, cfg)?;
            let pre = maybe_resume(&mut e, resume)?;
            let degrees = std::mem::take(&mut *degrees.lock().expect("degree counter poisoned"));
            let (ranks, stats) = pagerank::run(&mut e, &p, &degrees, iterations);
            let top = ranks
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(v, r)| format!("top vertex {v} (rank {r:.6})"))
                .unwrap_or_default();
            Ok(format!("{pre}{}", summarize(algo, &top, &stats)))
        }
        "pagerank-delta" => {
            let p = pagerank_delta::PagerankDelta::new(eps);
            // Same one-pass degree fold as pagerank: the O(V) counts
            // ride along the ingest observer.
            let degrees = std::sync::Arc::new(std::sync::Mutex::new(vec![0u32; num_vertices]));
            let ingest = {
                let degrees = std::sync::Arc::clone(&degrees);
                EdgeIngest::new(input).with_observer(move |chunk| {
                    let mut d = degrees.lock().expect("degree counter poisoned");
                    for e in chunk {
                        d[e.src as usize] += 1;
                    }
                })
            };
            let mut e = DiskEngine::from_ingest(store, &ingest, &p, cfg)?;
            let pre = maybe_resume(&mut e, resume)?;
            let degrees = std::mem::take(&mut *degrees.lock().expect("degree counter poisoned"));
            let (ranks, stats) = pagerank_delta::run(&mut e, &p, &degrees, iterations);
            let top = ranks
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(v, r)| format!("top vertex {v} (rank {r:.6})"))
                .unwrap_or_default();
            Ok(format!("{pre}{}", summarize(algo, &top, &stats)))
        }
        "sssp" => {
            let p = sssp::Sssp::new();
            let mut e = DiskEngine::from_ingest(store, &EdgeIngest::new(input), &p, cfg)?;
            let pre = maybe_resume(&mut e, resume)?;
            let (dist, stats) = sssp::run(&mut e, &p, root);
            let reached = dist.iter().filter(|d| d.is_finite()).count();
            Ok(format!(
                "{pre}{}",
                summarize(algo, &format!("{reached} vertices reachable"), &stats)
            ))
        }
        "mis" => {
            let p = mis::Mis::new();
            let mut e = DiskEngine::from_ingest(store, &EdgeIngest::undirected(input), &p, cfg)?;
            let pre = maybe_resume(&mut e, resume)?;
            let (statuses, stats) = mis::run(&mut e, &p);
            let members = statuses
                .iter()
                .filter(|&&s| s == mis::status::IN_SET)
                .count();
            Ok(format!(
                "{pre}{}",
                summarize(algo, &format!("{members} members"), &stats)
            ))
        }
        "scc" => {
            let p = scc::Scc::new();
            let mut e = DiskEngine::from_ingest(store, &EdgeIngest::bidirectional(input), &p, cfg)?;
            let pre = maybe_resume(&mut e, resume)?;
            let (ids, stats) = scc::run(&mut e, &p);
            let mut distinct = ids.clone();
            distinct.sort_unstable();
            distinct.dedup();
            Ok(format!(
                "{pre}{}",
                summarize(
                    algo,
                    &format!("{} strongly connected components", distinct.len()),
                    &stats
                )
            ))
        }
        "mcst" => {
            let p = mcst::Mcst;
            let mut e = DiskEngine::from_ingest(store, &EdgeIngest::undirected(input), &p, cfg)?;
            let pre = maybe_resume(&mut e, resume)?;
            let (result, stats) = mcst::run(&mut e, &p);
            Ok(format!(
                "{pre}{}",
                summarize(
                    algo,
                    &format!(
                        "forest weight {:.3} over {} trees",
                        result.total_weight, result.components
                    ),
                    &stats
                )
            ))
        }
        "spmv" => {
            let p = spmv::Spmv;
            let mut e = DiskEngine::from_ingest(store, &EdgeIngest::new(input), &p, cfg)?;
            let pre = maybe_resume(&mut e, resume)?;
            let x = vec![1.0f32; num_vertices];
            let (y, it) = spmv::run(&mut e, &p, &x);
            let stats = RunStats {
                iterations: vec![it],
                total_ns: 0,
            };
            let norm: f64 = y.iter().map(|v| f64::from(*v) * f64::from(*v)).sum();
            Ok(format!(
                "{pre}{}",
                summarize(algo, &format!("|y|^2 = {norm:.3}"), &stats)
            ))
        }
        "conductance" => {
            let p = conductance::Conductance;
            let mut e = DiskEngine::from_ingest(store, &EdgeIngest::new(input), &p, cfg)?;
            let pre = maybe_resume(&mut e, resume)?;
            let (r, it) = conductance::run(&mut e, &p, &|v| v & 1);
            let stats = RunStats {
                iterations: vec![it],
                total_ns: 0,
            };
            Ok(format!(
                "{pre}{}",
                summarize(
                    algo,
                    &format!("cut {} / volumes {} : {}", r.cut, r.vol0, r.vol1),
                    &stats
                )
            ))
        }
        other => Err(CliError::Usage(format!("unknown algorithm `{other}`"))),
    }
}

// ------------------------------------------------------------------- serve

/// The shutdown flag `xstream serve` polls, shared with the signal
/// handler through a `OnceLock` so the handler body is just an atomic
/// store (async-signal-safe). Tests drive shutdown through it too.
fn serve_shutdown_flag() -> std::sync::Arc<std::sync::atomic::AtomicBool> {
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, OnceLock};
    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))))
}

/// Routes SIGTERM and SIGINT to the serve shutdown flag (graceful
/// drain + exit 0). Declared directly against libc — the project's
/// dependency policy admits no signal crates (same precedent as the
/// `sched_setaffinity` declaration in the storage crate's topology
/// module).
fn install_serve_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        serve_shutdown_flag().store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    // SAFETY: installing a handler whose body is a single atomic store
    // (async-signal-safe); the OnceLock is initialized before handlers
    // are installed, so the handler's get() never races init.
    let handler = on_signal as extern "C" fn(i32);
    unsafe {
        signal(SIGTERM, handler as usize);
        signal(SIGINT, handler as usize);
    }
}

/// `xstream serve <FILE> ...` — block serving queries until SIGTERM or
/// SIGINT, then drain and return the final counter summary (exit 0).
pub fn serve(args: &Args) -> Result<String, CliError> {
    let shutdown = serve_shutdown_flag();
    shutdown.store(false, std::sync::atomic::Ordering::SeqCst);
    install_serve_signal_handlers();
    serve_until(args, shutdown)
}

/// The body of [`serve`] with an injectable shutdown flag (tests set
/// the flag from another thread instead of delivering signals).
fn serve_until(
    args: &Args,
    shutdown: std::sync::Arc<std::sync::atomic::AtomicBool>,
) -> Result<String, CliError> {
    use xstream_server::{GraphService, ServeOptions, Server};

    let path = args.require_positional(0, "edge file")?.to_string();
    let engine_kind = args.get("engine").unwrap_or("mem");
    let iterations = args.get_usize("iterations")?.unwrap_or(5);
    let cfg = engine_config(args)?;
    let port = args.get_usize("port")?.unwrap_or(0);
    let port = u16::try_from(port)
        .map_err(|_| CliError::Usage(format!("--port must be 0..=65535, got {port}")))?;
    let max_inflight = args.get_usize("max-inflight")?.unwrap_or(32);
    if max_inflight == 0 {
        return Err(CliError::Usage("--max-inflight must be at least 1".into()));
    }
    let query_timeout = args.get_usize("query-timeout")?.unwrap_or(30_000);
    if query_timeout == 0 {
        return Err(CliError::Usage(
            "--query-timeout must be at least 1 (milliseconds)".into(),
        ));
    }
    let cache_entries = args.get_usize("cache-entries")?.unwrap_or(256);

    // Built before the engine so bad flags fail fast, dropped after
    // the server exits (removes a default ephemeral store, keeps an
    // explicit --store).
    let (service, store_dir) = match engine_kind {
        "mem" | "memory" => {
            let graph = read_edge_file(Path::new(&path))?;
            (GraphService::open_memory(graph, cfg, iterations), None)
        }
        "disk" => {
            let dir = prepare_store_dir(args)?;
            let service = GraphService::open_disk(Path::new(&path), dir.path(), cfg, iterations)
                .map_err(CliError::Run)?;
            (service, Some(dir))
        }
        other => {
            return Err(CliError::Usage(format!(
                "--engine must be mem or disk, got `{other}`"
            )))
        }
    };
    let opts = ServeOptions {
        port,
        max_inflight,
        query_timeout: std::time::Duration::from_millis(query_timeout as u64),
        cache_entries,
    };
    let server = Server::bind(service, opts, shutdown).map_err(CliError::Run)?;
    // Printed (and flushed) before blocking so scripts can scrape the
    // resolved ephemeral port; the summary itself is returned through
    // dispatch once the server drains.
    println!(
        "serving {path} on {} ({engine_kind} engine, max-inflight {max_inflight}, \
         query-timeout {query_timeout} ms, cache {cache_entries} entries)",
        server.local_addr()
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let stats = server.run();
    drop(store_dir);
    Ok(format!("shutdown complete\n{}\n", stats.summary()))
}

// ------------------------------------------------------------------- scrub

/// `xstream scrub <STORE> [--repair]` — verify every durable stream of
/// a partition store against its manifest; with `--repair`, rebuild
/// derived streams and quarantine stale ones.
///
/// Detect-only scrub of a damaged store is an *error* (nonzero exit),
/// so CI and scripts can gate on it; a repair that resolves everything
/// it found exits cleanly.
pub fn scrub(args: &Args) -> Result<String, CliError> {
    let dir = PathBuf::from(args.require_positional(0, "store directory")?);
    if !dir.is_dir() {
        return Err(CliError::Run(format!("{}: not a directory", dir.display())));
    }
    if !dir.join(STORE_MARKER).is_file() {
        return Err(CliError::Run(format!(
            "{}: no {STORE_MARKER} marker; refusing to scrub a directory that \
             is not an xstream partition store",
            dir.display()
        )));
    }
    let repair = args.switch("repair");
    let report = xstream_disk::scrub(&dir, repair)?;
    let mut s = String::new();
    if report.manifest_ok {
        let _ = writeln!(
            s,
            "store {} (generation {}, fingerprint {:#018x})",
            dir.display(),
            report.generation,
            report.fingerprint
        );
    } else {
        let _ = writeln!(
            s,
            "store {}: MANIFEST missing or corrupt — streams cannot be verified \
             (re-running the original ingest re-seals the store)",
            dir.display()
        );
    }
    for sr in &report.streams {
        use xstream_disk::{Action, Verdict};
        let verdict = match &sr.verdict {
            Verdict::Intact => "intact".to_string(),
            Verdict::SidecarRotted => "stream intact, checksum sidecar rotted".to_string(),
            Verdict::Corrupt { detail } => format!("CORRUPT: {detail}"),
            Verdict::Missing => "MISSING".to_string(),
            Verdict::NeedsRebuild => "flagged for rebuild".to_string(),
            Verdict::Unlisted => "not in manifest (stale)".to_string(),
            Verdict::Unverified => "unverified (per-run stream)".to_string(),
        };
        let action = match sr.action {
            Action::None => "",
            Action::Rebuilt => " -> rebuilt",
            Action::SidecarRewritten => " -> sidecar rewritten",
            Action::Quarantined => " -> quarantined",
            Action::Unrepairable => " -> UNREPAIRABLE (primary data; re-ingest required)",
            Action::RepairNeeded => " -> run with --repair to fix",
        };
        let _ = writeln!(s, "  {:<16} {verdict}{action}", sr.name);
    }
    if report.is_clean() {
        let _ = writeln!(s, "store is clean");
        Ok(s)
    } else if report.has_unresolved_damage() {
        let _ = writeln!(s, "store has unresolved damage");
        Err(CliError::Run(s))
    } else {
        let _ = writeln!(
            s,
            "all damage repaired (manifest re-sealed at generation {})",
            report.generation
        );
        Ok(s)
    }
}

// -------------------------------------------------------------- components

/// `xstream components <FILE> --model semi|wstream [--capacity N]`.
///
/// The edge file is presented to the streaming models as a
/// [`FileSource`] wrapped in [`Mirrored`] — each pass re-reads the
/// file in bounded chunks with per-edge undirected mirroring, so the
/// doubled edge list is never materialized (the models' whole point is
/// sequential passes over a stream larger than memory).
pub fn components(args: &Args) -> Result<String, CliError> {
    let path = args.require_positional(0, "edge file")?;
    let graph = Mirrored(FileSource::open(Path::new(path), 1 << 14)?);
    let model = args.get("model").unwrap_or("semi");
    match model {
        "semi" => {
            let labels = semi::connected_components(&graph)?;
            let mut distinct = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            Ok(format!(
                "semi-streaming CC: {} components in 1 pass\n",
                distinct.len()
            ))
        }
        "wstream" => {
            let capacity = args.get_usize("capacity")?.unwrap_or(1 << 16);
            let r = wstream::connected_components(&graph, capacity, wstream::Backing::Memory)?;
            let mut distinct = r.labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            Ok(format!(
                "w-stream CC: {} components in {} passes ({} edges forwarded, capacity {capacity})\n",
                distinct.len(),
                r.passes,
                r.forwarded_edges
            ))
        }
        other => Err(CliError::Usage(format!(
            "--model must be semi or wstream, got `{other}`"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    fn tmpfile(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("xstream_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn serve_validates_flags_and_shuts_down_cleanly() {
        let path = tmpfile("serve_cli.edges");
        dispatch(&sv(&[
            "generate",
            "erdos-renyi",
            "--vertices",
            "100",
            "--edges",
            "500",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let p = path.to_str().unwrap();
        for argv in [
            vec!["serve"],
            vec!["serve", p, "--engine", "warp"],
            vec!["serve", p, "--max-inflight", "0"],
            vec!["serve", p, "--query-timeout", "0"],
            vec!["serve", p, "--port", "99999"],
        ] {
            let err = dispatch(&sv(&argv)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{argv:?}");
        }
        // Full startup + graceful drain through the injectable flag
        // (the signal path stores into the same kind of flag).
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let args = Args::parse(&sv(&[p, "--port", "0", "--threads", "2"])).unwrap();
        let thread_flag = std::sync::Arc::clone(&flag);
        let handle = std::thread::spawn(move || serve_until(&args, thread_flag));
        std::thread::sleep(std::time::Duration::from_millis(300));
        flag.store(true, std::sync::atomic::Ordering::SeqCst);
        let out = handle.join().unwrap().unwrap();
        assert!(out.contains("shutdown complete"), "{out}");
        assert!(out.contains("served 0 queries"), "{out}");
    }

    #[test]
    fn generate_info_run_pipeline() {
        let path = tmpfile("pipe.edges");
        let out = dispatch(&sv(&[
            "generate",
            "rmat",
            "--scale",
            "8",
            "--undirected",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("wrote 256 vertices"));

        let out = dispatch(&sv(&["info", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("vertices:    256"));

        let out = dispatch(&sv(&["run", "wcc", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("components"), "{out}");

        let out = dispatch(&sv(&[
            "run",
            "pagerank",
            path.to_str().unwrap(),
            "--iterations",
            "3",
            "--threads",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("top vertex"), "{out}");
    }

    #[test]
    fn disk_engine_run_reports_io() {
        let path = tmpfile("disk.edges");
        dispatch(&sv(&[
            "generate",
            "erdos-renyi",
            "--vertices",
            "500",
            "--edges",
            "3000",
            "--undirected",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let store = std::env::temp_dir().join("xstream_cli_tests_store");
        let out = dispatch(&sv(&[
            "run",
            "wcc",
            path.to_str().unwrap(),
            "--engine",
            "disk",
            "--memory-budget",
            "1M",
            "--io-unit",
            "16K",
            "--store",
            store.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("MB read"), "{out}");
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn every_algorithm_runs_on_both_engines() {
        let path = tmpfile("allalgos.edges");
        dispatch(&sv(&[
            "generate",
            "erdos-renyi",
            "--vertices",
            "300",
            "--edges",
            "2000",
            "--weighted",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        for algo in [
            "wcc",
            "bfs",
            "sssp",
            "pagerank",
            "pagerank-delta",
            "spmv",
            "mis",
            "scc",
            "mcst",
            "conductance",
        ] {
            for engine in ["mem", "disk"] {
                let store =
                    std::env::temp_dir().join(format!("xstream_cli_allalgos_{algo}_{engine}"));
                let out = dispatch(&sv(&[
                    "run",
                    algo,
                    path.to_str().unwrap(),
                    "--engine",
                    engine,
                    "--memory-budget",
                    "1M",
                    "--io-unit",
                    "16K",
                    "--store",
                    store.to_str().unwrap(),
                ]))
                .unwrap_or_else(|e| panic!("{algo} on {engine}: {e}"));
                assert!(out.contains("iterations"), "{algo}/{engine}: {out}");
                let _ = std::fs::remove_dir_all(&store);
            }
        }
    }

    #[test]
    fn gather_threads_and_device_map_flags() {
        let path = tmpfile("devmap.edges");
        dispatch(&sv(&[
            "generate",
            "erdos-renyi",
            "--vertices",
            "400",
            "--edges",
            "2500",
            "--undirected",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let store = std::env::temp_dir().join("xstream_cli_tests_devmap");
        let out = dispatch(&sv(&[
            "run",
            "wcc",
            path.to_str().unwrap(),
            "--engine",
            "disk",
            "--threads",
            "4",
            "--gather-threads",
            "2",
            "--partitions",
            "4",
            "--device-map",
            "edges=0,updates=1",
            "--memory-budget",
            "1M",
            "--io-unit",
            "16K",
            "--store",
            store.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("components"), "{out}");
        let _ = std::fs::remove_dir_all(&store);

        // A malformed map is a usage error.
        let err = dispatch(&sv(&[
            "run",
            "wcc",
            path.to_str().unwrap(),
            "--engine",
            "disk",
            "--device-map",
            "bogus",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn frontier_flags_accepted_and_validated() {
        let path = tmpfile("frontier.edges");
        dispatch(&sv(&[
            "generate",
            "erdos-renyi",
            "--vertices",
            "400",
            "--edges",
            "2400",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        // BFS on the disk engine with frontier scatter (default),
        // forced-sparse, and skipping disabled all agree on the
        // reachable count; the default run reports frontier activity.
        let run = |extra: &[&str]| {
            let store = std::env::temp_dir().join("xstream_cli_tests_frontier");
            let mut argv = sv(&[
                "run",
                "bfs",
                path.to_str().unwrap(),
                "--engine",
                "disk",
                "--memory-budget",
                "1M",
                "--io-unit",
                "16K",
                "--partitions",
                "4",
                "--store",
                store.to_str().unwrap(),
            ]);
            argv.extend(sv(extra));
            let out = dispatch(&argv);
            let _ = std::fs::remove_dir_all(&store);
            out
        };
        let reached = |s: &str| {
            s.lines()
                .find(|l| l.contains("vertices reached"))
                .map(str::to_string)
        };
        let dflt = run(&[]).unwrap();
        assert!(dflt.contains("frontier:"), "{dflt}");
        let sparse = run(&["--frontier-threshold", "0"]).unwrap();
        let dense = run(&["--no-frontier-skip"]).unwrap();
        assert!(!dense.contains("frontier:"), "{dense}");
        assert_eq!(reached(&dflt), reached(&sparse), "{dflt} vs {sparse}");
        assert_eq!(reached(&dflt), reached(&dense), "{dflt} vs {dense}");
        // pagerank-delta accepts --epsilon; a bad value is a usage
        // error, as is giving the switch a value.
        let out = dispatch(&sv(&[
            "run",
            "pagerank-delta",
            path.to_str().unwrap(),
            "--epsilon",
            "0",
            "--iterations",
            "10",
        ]))
        .unwrap();
        assert!(out.contains("top vertex"), "{out}");
        let err = dispatch(&sv(&[
            "run",
            "pagerank-delta",
            path.to_str().unwrap(),
            "--epsilon",
            "wat",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let err = Args::parse(&sv(&["--no-frontier-skip=yes"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
    }

    #[test]
    fn pin_workers_flag_accepted_and_validated() {
        let path = tmpfile("pin.edges");
        dispatch(&sv(&[
            "generate",
            "erdos-renyi",
            "--vertices",
            "200",
            "--edges",
            "1200",
            "--undirected",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        // Both spellings work, on both engines; on a restricted
        // environment pinning is a silent no-op and results match.
        let baseline = dispatch(&sv(&["run", "wcc", path.to_str().unwrap()])).unwrap();
        for mode in ["cores", "nodes", "off"] {
            let out = dispatch(&sv(&[
                "run",
                "wcc",
                path.to_str().unwrap(),
                &format!("--pin-workers={mode}"),
                "--threads",
                "2",
            ]))
            .unwrap();
            // Same component count line regardless of pinning.
            assert_eq!(
                out.lines().next(),
                baseline.lines().next(),
                "mode {mode}: {out}"
            );
        }
        let err = dispatch(&sv(&[
            "run",
            "wcc",
            path.to_str().unwrap(),
            "--pin-workers",
            "sideways",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        // Every documented run flag appears in the help text.
        let help = usage();
        for flag in [
            "--engine",
            "--threads",
            "--pin-workers",
            "--gather-threads",
            "--partitions",
            "--memory-budget",
            "--io-unit",
            "--device-map",
            "--iterations",
            "--root",
            "--store",
            "--max-retries",
            "--checkpoint-every",
            "--resume",
            "--epsilon",
            "--frontier-threshold",
            "--no-frontier-skip",
            "--model",
            "--capacity",
            "--scale",
            "--vertices",
            "--edges",
            "--degree",
            "--seed",
            "--undirected",
            "--weighted",
            "--format",
            "--num-vertices",
            "--no-verify-reads",
            "--repair",
            "--port",
            "--max-inflight",
            "--query-timeout",
            "--cache-entries",
        ] {
            assert!(help.contains(flag), "{flag} missing from usage()");
        }
        // Every subcommand is documented too.
        for cmd in [
            "generate",
            "import",
            "info",
            "run",
            "serve",
            "components",
            "scrub",
        ] {
            assert!(help.contains(cmd), "{cmd} missing from usage()");
        }
    }

    #[test]
    fn checkpoint_and_resume_flags() {
        let path = tmpfile("ckpt.edges");
        dispatch(&sv(&[
            "generate",
            "erdos-renyi",
            "--vertices",
            "300",
            "--edges",
            "2000",
            "--undirected",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let store = std::env::temp_dir().join("xstream_cli_tests_ckpt");
        let _ = std::fs::remove_dir_all(&store);
        let run = |extra: &[&str]| {
            let mut argv = sv(&[
                "run",
                "wcc",
                path.to_str().unwrap(),
                "--engine",
                "disk",
                "--checkpoint-every",
                "1",
                "--max-retries",
                "2",
                "--memory-budget",
                "1M",
                "--io-unit",
                "16K",
                "--store",
                store.to_str().unwrap(),
            ]);
            argv.extend(sv(extra));
            dispatch(&argv)
        };
        let base = run(&[]).unwrap();
        // The kept store holds at least one checkpoint frame.
        assert!(
            store.join("checkpoint.0").is_file() || store.join("checkpoint.1").is_file(),
            "no checkpoint frame written"
        );
        // A resumed run restores it and reports the same components.
        let resumed = run(&["--resume"]).unwrap();
        assert!(resumed.contains("resumed from checkpoint"), "{resumed}");
        let comp = |s: &str| {
            s.lines()
                .find(|l| l.contains("components"))
                .map(str::to_string)
        };
        assert_eq!(comp(&base), comp(&resumed), "{base} vs {resumed}");
        // --resume needs the disk engine and an explicit store.
        let err = dispatch(&sv(&["run", "wcc", path.to_str().unwrap(), "--resume"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let err = dispatch(&sv(&[
            "run",
            "wcc",
            path.to_str().unwrap(),
            "--engine",
            "disk",
            "--resume",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn scrub_detects_damage_and_repair_restores_the_store() {
        let path = tmpfile("scrub.edges");
        dispatch(&sv(&[
            "generate",
            "erdos-renyi",
            "--vertices",
            "400",
            "--edges",
            "2400",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let store = std::env::temp_dir().join("xstream_cli_tests_scrub");
        let _ = std::fs::remove_dir_all(&store);
        // BFS tracks its frontier, so the build seals sparse-scatter
        // index streams into the manifest alongside edges/checkpoints.
        let out = dispatch(&sv(&[
            "run",
            "bfs",
            path.to_str().unwrap(),
            "--engine",
            "disk",
            "--memory-budget",
            "1M",
            "--io-unit",
            "16K",
            "--partitions",
            "4",
            "--checkpoint-every",
            "1",
            "--store",
            store.to_str().unwrap(),
        ]))
        .unwrap();
        // Verification is on by default and reports its work.
        assert!(out.contains("chunks verified on read"), "{out}");

        // A freshly-written store is clean.
        let scrub = |extra: &[&str]| {
            let mut argv = sv(&["scrub", store.to_str().unwrap()]);
            argv.extend(sv(extra));
            dispatch(&argv)
        };
        let out = scrub(&[]).unwrap();
        assert!(out.contains("store is clean"), "{out}");

        // Rot one byte of a derived index stream: detect-only scrub
        // fails (nonzero exit for CI gates) and points at --repair.
        let rot = |name: &str, at: u64| {
            use std::io::{Read, Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(store.join(name))
                .unwrap();
            f.seek(SeekFrom::Start(at)).unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(at)).unwrap();
            f.write_all(&[b[0] ^ 0xff]).unwrap();
        };
        rot("index.2", 40);
        let err = scrub(&[]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("index.2"), "{msg}");
        assert!(msg.contains("CORRUPT"), "{msg}");
        assert!(msg.contains("--repair"), "{msg}");

        // --repair rebuilds the index from its verified edge stream
        // and re-seals the manifest; the store is clean again and the
        // repaired store still runs (resume included).
        let out = scrub(&["--repair"]).unwrap();
        assert!(out.contains("rebuilt"), "{out}");
        assert!(out.contains("all damage repaired"), "{out}");
        let out = scrub(&[]).unwrap();
        assert!(out.contains("store is clean"), "{out}");

        // Rotted primary data is detected but not fabricated back:
        // repair reports it unrepairable and still exits nonzero.
        rot("edges.1", 100);
        let err = scrub(&["--repair"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("edges.1"), "{msg}");
        assert!(msg.contains("UNREPAIRABLE"), "{msg}");

        // Refuses directories that are not stores.
        let not_store = std::env::temp_dir().join("xstream_cli_tests_notastore");
        std::fs::create_dir_all(&not_store).unwrap();
        let err = dispatch(&sv(&["scrub", not_store.to_str().unwrap()])).unwrap_err();
        assert!(err.to_string().contains(STORE_MARKER), "{err}");
        let _ = std::fs::remove_dir_all(&not_store);
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn resume_under_changed_layout_flags_names_the_flag() {
        let path = tmpfile("resumecfg.edges");
        dispatch(&sv(&[
            "generate",
            "erdos-renyi",
            "--vertices",
            "300",
            "--edges",
            "1800",
            "--undirected",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let store = std::env::temp_dir().join("xstream_cli_tests_resumecfg");
        let _ = std::fs::remove_dir_all(&store);
        let run = |extra: &[&str]| {
            let mut argv = sv(&[
                "run",
                "wcc",
                path.to_str().unwrap(),
                "--engine",
                "disk",
                "--memory-budget",
                "1M",
                "--io-unit",
                "16K",
                "--checkpoint-every",
                "1",
                "--store",
                store.to_str().unwrap(),
            ]);
            argv.extend(sv(extra));
            dispatch(&argv)
        };
        run(&["--partitions", "4"]).unwrap();
        // Resuming under a different partition count is rejected with
        // the offending flag named, not a silent fresh start.
        let err = run(&["--partitions", "8", "--resume"]).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("--partitions"), "{msg}");
        assert!(msg.contains("--resume"), "{msg}");
        // With the original layout the resume goes through.
        let out = run(&["--partitions", "4", "--resume"]).unwrap();
        assert!(out.contains("resumed from checkpoint"), "{out}");
        let _ = std::fs::remove_dir_all(&store);
    }

    #[test]
    fn store_dir_safety() {
        let path = tmpfile("storesafety.edges");
        dispatch(&sv(&[
            "generate",
            "erdos-renyi",
            "--vertices",
            "200",
            "--edges",
            "1000",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let run = |store: &Path| {
            dispatch(&sv(&[
                "run",
                "wcc",
                path.to_str().unwrap(),
                "--engine",
                "disk",
                "--memory-budget",
                "1M",
                "--io-unit",
                "16K",
                "--store",
                store.to_str().unwrap(),
            ]))
        };
        // A non-empty directory without the marker is refused — and
        // survives untouched.
        let precious = std::env::temp_dir().join("xstream_cli_precious");
        let _ = std::fs::remove_dir_all(&precious);
        std::fs::create_dir_all(&precious).unwrap();
        std::fs::write(precious.join("thesis.tex"), b"irreplaceable").unwrap();
        let err = run(&precious).unwrap_err();
        assert!(matches!(err, CliError::Run(_)), "{err}");
        assert!(err.to_string().contains(STORE_MARKER), "{err}");
        assert_eq!(
            std::fs::read(precious.join("thesis.tex")).unwrap(),
            b"irreplaceable"
        );
        // An empty directory is fine, gains the marker, and a second
        // run over the now-marked directory is allowed to wipe it.
        std::fs::remove_file(precious.join("thesis.tex")).unwrap();
        run(&precious).unwrap();
        assert!(precious.join(STORE_MARKER).is_file());
        run(&precious).unwrap();
        let _ = std::fs::remove_dir_all(&precious);
        // A store path that is a file is refused.
        let file = std::env::temp_dir().join("xstream_cli_store_file");
        std::fs::write(&file, b"x").unwrap();
        assert!(matches!(run(&file), Err(CliError::Run(_))));
        let _ = std::fs::remove_file(&file);
    }

    #[test]
    fn default_store_is_unique_and_cleaned_up() {
        let path = tmpfile("defstore.edges");
        dispatch(&sv(&[
            "generate",
            "erdos-renyi",
            "--vertices",
            "150",
            "--edges",
            "800",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let leftovers = || {
            std::fs::read_dir(std::env::temp_dir())
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| {
                    e.file_name()
                        .to_string_lossy()
                        .starts_with(&format!("xstream_run_{}_", std::process::id()))
                })
                .count()
        };
        let before = leftovers();
        dispatch(&sv(&[
            "run",
            "wcc",
            path.to_str().unwrap(),
            "--engine",
            "disk",
            "--memory-budget",
            "1M",
            "--io-unit",
            "16K",
        ]))
        .unwrap();
        // The per-invocation temp store removed itself.
        assert_eq!(leftovers(), before);
    }

    #[test]
    fn out_of_range_root_is_a_usage_error() {
        let path = tmpfile("root.edges");
        dispatch(&sv(&[
            "generate",
            "grid",
            "--vertices",
            "100",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        for engine in ["mem", "disk"] {
            for algo in ["bfs", "sssp"] {
                let err = dispatch(&sv(&[
                    "run",
                    algo,
                    path.to_str().unwrap(),
                    "--engine",
                    engine,
                    "--memory-budget",
                    "1M",
                    "--io-unit",
                    "16K",
                    "--root",
                    "100000",
                ]))
                .unwrap_err();
                match err {
                    CliError::Usage(msg) => {
                        assert!(msg.contains("valid roots"), "{algo}/{engine}: {msg}")
                    }
                    other => panic!("{algo}/{engine}: expected usage error, got {other}"),
                }
            }
        }
        // An in-range root still works, and pagerank ignores --root
        // entirely (no spurious validation).
        let out = dispatch(&sv(&["run", "bfs", path.to_str().unwrap(), "--root", "99"])).unwrap();
        assert!(out.contains("vertices reached"), "{out}");
        let out = dispatch(&sv(&[
            "run",
            "pagerank",
            path.to_str().unwrap(),
            "--root",
            "100000",
        ]))
        .unwrap();
        assert!(out.contains("top vertex"), "{out}");
    }

    #[test]
    fn import_then_run_pipeline() {
        let dir = std::env::temp_dir().join("xstream_cli_import");
        std::fs::create_dir_all(&dir).unwrap();
        let src = dir.join("snap.txt");
        let dst = dir.join("snap.xse");
        std::fs::write(&src, "# tiny SNAP fixture\n0 1\n1 2\n2 3\n3 0\n\n4 4 2.5\n").unwrap();
        let out = dispatch(&sv(&[
            "import",
            src.to_str().unwrap(),
            dst.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("imported 5 edges over 5 vertices"), "{out}");
        assert!(out.contains("2 comment/blank lines skipped"), "{out}");
        let info = dispatch(&sv(&["info", dst.to_str().unwrap()])).unwrap();
        assert!(info.contains("vertices:    5"), "{info}");
        assert!(info.contains("self loops:  1"), "{info}");
        // The imported file runs on both engines and agrees: the
        // 0-1-2-3 cycle plus the isolated self-loop vertex give two
        // components. (Explicit --store: the default-store path is
        // owned by `default_store_is_unique_and_cleaned_up`, which
        // counts this process's ephemeral temp dirs and would race a
        // concurrent default-store run.)
        let store = dir.join("store");
        for engine in ["mem", "disk"] {
            let out = dispatch(&sv(&[
                "run",
                "wcc",
                dst.to_str().unwrap(),
                "--engine",
                engine,
                "--memory-budget",
                "1M",
                "--io-unit",
                "16K",
                "--store",
                store.to_str().unwrap(),
            ]))
            .unwrap();
            assert!(out.contains("2 components"), "{engine}: {out}");
        }
        // Bad format name is a usage error.
        let err = dispatch(&sv(&[
            "import",
            src.to_str().unwrap(),
            dst.to_str().unwrap(),
            "--format",
            "yaml",
        ]))
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn components_models_agree() {
        let path = tmpfile("cc.edges");
        dispatch(&sv(&[
            "generate",
            "pref-attach",
            "--vertices",
            "400",
            "--degree",
            "4",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let semi_out = dispatch(&sv(&[
            "components",
            path.to_str().unwrap(),
            "--model",
            "semi",
        ]))
        .unwrap();
        let w_out = dispatch(&sv(&[
            "components",
            path.to_str().unwrap(),
            "--model",
            "wstream",
            "--capacity",
            "16",
        ]))
        .unwrap();
        // Both report the same component count.
        let count = |s: &str| {
            s.split("CC: ")
                .nth(1)
                .and_then(|t| t.split(' ').next())
                .map(str::to_string)
        };
        assert_eq!(count(&semi_out), count(&w_out), "{semi_out} vs {w_out}");
    }

    #[test]
    fn bad_invocations_produce_usage_errors() {
        assert!(matches!(dispatch(&sv(&["run"])), Err(CliError::Usage(_))));
        assert!(matches!(
            dispatch(&sv(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            dispatch(&sv(&["generate", "rmat"])),
            Err(CliError::Usage(_))
        ));
        let help = dispatch(&sv(&["help"])).unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn weighted_switch_assigns_weights() {
        let path = tmpfile("weights.edges");
        dispatch(&sv(&[
            "generate",
            "grid",
            "--vertices",
            "100",
            "--weighted",
            "-o",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let g = read_edge_file(&path).unwrap();
        assert!(g.edges().iter().any(|e| e.weight > 0.0));
        let out = dispatch(&sv(&["run", "mcst", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("forest weight"), "{out}");
    }
}
