//! Minimal argument parser: positionals plus `--flag value` /
//! `--flag=value` / `--switch` options, with byte-size suffix parsing
//! (`64K`, `16M`, `2G`).

use std::collections::HashMap;
use std::fmt;

/// CLI failure: either a usage problem (caller prints help) or an
/// execution error.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation; the message explains the correct form.
    Usage(String),
    /// The command ran and failed.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Run(m) => write!(f, "error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<xstream_core::Error> for CliError {
    fn from(e: xstream_core::Error) -> Self {
        CliError::Run(e.to_string())
    }
}

/// Parsed arguments: positional operands in order plus named options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    positional: Vec<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

/// Option names that take no value.
const SWITCHES: &[&str] = &[
    "undirected",
    "weighted",
    "verbose",
    "resume",
    "no-frontier-skip",
    "no-verify-reads",
    "repair",
];

/// Consumes the value of option `flag`, refusing to swallow a
/// following option: `--store --verbose` must be a usage error, not a
/// directory literally named `--verbose`. Values that genuinely start
/// with `--` can be passed with the `--flag=value` form.
fn take_value(
    it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    flag: &str,
) -> Result<String, CliError> {
    match it.next() {
        Some(v) if v.starts_with("--") => Err(CliError::Usage(format!(
            "option {flag} needs a value, but the next argument is the option `{v}` \
             (use {flag}=VALUE for a value that starts with --)"
        ))),
        Some(v) => Ok(v.clone()),
        None => Err(CliError::Usage(format!("option {flag} needs a value"))),
    }
}

impl Args {
    /// Parses `argv` (already split, command name removed).
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if let Some((name, value)) = name.split_once('=') {
                    // `--flag=value` form. A switch spelled with a
                    // value must error, not silently land in the
                    // options map where `switch()` would never see it
                    // (`--undirected=true` generating a directed graph
                    // would be a nasty quiet failure).
                    if SWITCHES.contains(&name) {
                        return Err(CliError::Usage(format!(
                            "switch --{name} takes no value (got `{value}`)"
                        )));
                    }
                    args.options.insert(name.to_string(), value.to_string());
                } else if SWITCHES.contains(&name) {
                    args.switches.push(name.to_string());
                } else {
                    let value = take_value(&mut it, &format!("--{name}"))?;
                    args.options.insert(name.to_string(), value);
                }
            } else if let Some(short) = a.strip_prefix('-').filter(|s| s.len() == 1) {
                // Single-letter aliases: -o FILE.
                let long = match short {
                    "o" => "output",
                    other => return Err(CliError::Usage(format!("unknown option -{other}"))),
                };
                let value = take_value(&mut it, &format!("-{short}"))?;
                args.options.insert(long.to_string(), value);
            } else {
                args.positional.push(a.clone());
            }
        }
        Ok(args)
    }

    /// Positional operand `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Required positional operand `i`, described as `what` in errors.
    pub fn require_positional(&self, i: usize, what: &str) -> Result<&str, CliError> {
        self.positional(i)
            .ok_or_else(|| CliError::Usage(format!("missing {what}")))
    }

    /// Named option as a raw string.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Whether `--name` was passed as a switch.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Named option parsed as an integer.
    pub fn get_usize(&self, name: &str) -> Result<Option<usize>, CliError> {
        self.get(name)
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| CliError::Usage(format!("--{name} expects an integer, got `{v}`")))
            })
            .transpose()
    }

    /// Named option parsed as a byte size (suffixes K/M/G, powers of
    /// two, case-insensitive).
    pub fn get_bytes(&self, name: &str) -> Result<Option<usize>, CliError> {
        self.get(name)
            .map(|v| {
                parse_bytes(v).ok_or_else(|| {
                    CliError::Usage(format!(
                        "--{name} expects a size like 64K/16M/2G, got `{v}`"
                    ))
                })
            })
            .transpose()
    }
}

/// Parses `16M`-style byte sizes (K/M/G suffixes, powers of two).
pub fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1usize << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1usize << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1usize << 30),
        _ => (s, 1usize),
    };
    let v: f64 = digits.parse().ok()?;
    if v < 0.0 {
        return None;
    }
    Some((v * mult as f64) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_options_and_switches() {
        let a = Args::parse(&sv(&[
            "rmat",
            "--scale",
            "20",
            "-o",
            "out.edges",
            "--undirected",
        ]))
        .unwrap();
        assert_eq!(a.positional(0), Some("rmat"));
        assert_eq!(a.get("scale"), Some("20"));
        assert_eq!(a.get("output"), Some("out.edges"));
        assert!(a.switch("undirected"));
        assert!(!a.switch("weighted"));
    }

    #[test]
    fn equals_form_parses_like_spaced_form() {
        let a = Args::parse(&sv(&["--pin-workers=cores", "--threads=4"])).unwrap();
        assert_eq!(a.get("pin-workers"), Some("cores"));
        assert_eq!(a.get_usize("threads").unwrap(), Some(4));
        // Values may themselves contain `=` (device maps).
        let a = Args::parse(&sv(&["--device-map=edges=0,updates=1"])).unwrap();
        assert_eq!(a.get("device-map"), Some("edges=0,updates=1"));
        // A switch given a value is a usage error, not a silent no-op.
        let err = Args::parse(&sv(&["--undirected=true"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn missing_value_is_a_usage_error() {
        let err = Args::parse(&sv(&["--scale"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn option_cannot_swallow_a_following_option() {
        // `--store --verbose` must not create a directory named
        // `--verbose`.
        let err = Args::parse(&sv(&["--store", "--verbose"])).unwrap_err();
        match err {
            CliError::Usage(msg) => {
                assert!(msg.contains("--store"), "{msg}");
                assert!(msg.contains("--verbose"), "{msg}");
            }
            other => panic!("expected usage error, got {other:?}"),
        }
        let err = Args::parse(&sv(&["-o", "--threads", "4"])).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        // The `=` form remains the escape hatch for literal `--` values.
        let a = Args::parse(&sv(&["--store=--weird-dir"])).unwrap();
        assert_eq!(a.get("store"), Some("--weird-dir"));
        // A single-dash value (e.g. a negative number or stdin `-`)
        // still passes positionally through options.
        let a = Args::parse(&sv(&["--output", "-"])).unwrap();
        assert_eq!(a.get("output"), Some("-"));
    }

    #[test]
    fn byte_suffixes() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes("64K"), Some(64 << 10));
        assert_eq!(parse_bytes("16M"), Some(16 << 20));
        assert_eq!(parse_bytes("2g"), Some(2 << 30));
        assert_eq!(parse_bytes("1.5M"), Some(3 << 19));
        assert_eq!(parse_bytes("nope"), None);
        assert_eq!(parse_bytes("-1M"), None);
    }

    #[test]
    fn typed_getters_validate() {
        let a = Args::parse(&sv(&["--threads", "abc"])).unwrap();
        assert!(a.get_usize("threads").is_err());
        let a = Args::parse(&sv(&["--memory-budget", "64M"])).unwrap();
        assert_eq!(a.get_bytes("memory-budget").unwrap(), Some(64 << 20));
    }
}
