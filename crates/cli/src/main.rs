//! The `xstream` binary: see [`xstream_cli::dispatch`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match xstream_cli::dispatch(&argv) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    }
}
