//! Implementation of the `xstream` command-line tool.
//!
//! The binary wires X-Stream's pieces into a shell workflow:
//!
//! ```text
//! xstream generate rmat --scale 20 -o twitter.edges
//! xstream import soc-LiveJournal1.txt lj.edges --undirected
//! xstream info twitter.edges
//! xstream run wcc twitter.edges --engine disk --memory-budget 256M
//! xstream components twitter.edges --model wstream --capacity 4096
//! ```
//!
//! The `--engine disk` path is genuinely out-of-core end to end: the
//! edge file is streamed into the partition shuffle (undirected /
//! bidirectional expansion applied chunk-by-chunk, degrees scanned in
//! one pass) and the full edge list is never held in memory.
//!
//! Argument parsing is hand-rolled (the project's dependency policy
//! admits no CLI crates) but lives in [`args`] behind a testable API.

pub mod args;
pub mod commands;

pub use args::{parse_bytes, Args, CliError};

/// Entry point shared by the binary and the tests: dispatches a full
/// argument vector (excluding `argv[0]`) and returns the rendered
/// output or an error message.
pub fn dispatch(argv: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Err(CliError::Usage(commands::usage()));
    };
    match command.as_str() {
        "generate" => commands::generate(&Args::parse(rest)?),
        "info" => commands::info(&Args::parse(rest)?),
        "import" => commands::import(&Args::parse(rest)?),
        "run" => commands::run(&Args::parse(rest)?),
        "serve" => commands::serve(&Args::parse(rest)?),
        "components" => commands::components(&Args::parse(rest)?),
        "scrub" => commands::scrub(&Args::parse(rest)?),
        "help" | "--help" | "-h" => Ok(commands::usage()),
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{}",
            commands::usage()
        ))),
    }
}
