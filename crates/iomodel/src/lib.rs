//! The paper's theoretical analysis (§5.7, Fig. 26): I/O-model costs of
//! propagating a label from a source to all reachable vertices, for
//! X-Stream, GraphChi, and sort-plus-random-access, plus the §3.4
//! streaming-partition sizing arithmetic.
//!
//! The Aggarwal–Vitter I/O model has a memory of `M` words backed by an
//! infinite disk with transfers of aligned blocks of `B` words; costs
//! count block transfers. `D` is the graph diameter (the number of
//! edge-centric scatter phases label propagation needs).

/// Inputs of the Fig. 26 cost formulas, all in *words*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelParams {
    /// Vertex-state size `|V|` in words.
    pub v: f64,
    /// Edge-list size `|E|` in words.
    pub e: f64,
    /// Update-stream size `|U|` per iteration in words.
    pub u: f64,
    /// Fast-memory size `M` in words.
    pub m: f64,
    /// Block size `B` in words.
    pub b: f64,
    /// Graph diameter `D` (scatter phases needed).
    pub d: f64,
}

impl ModelParams {
    /// Parameters for a graph with `|E| = degree * |V|` and updates
    /// proportional to edges, in block/memory units of choice.
    pub fn graph(v: f64, degree: f64, m: f64, b: f64, d: f64) -> Self {
        let e = v * degree;
        Self {
            v,
            e,
            u: e,
            m,
            b,
            d,
        }
    }
}

/// Number of streaming partitions X-Stream needs: `K = |V| / M`
/// (vertex state of one partition must fit memory), at least 1.
pub fn xstream_partitions(p: &ModelParams) -> f64 {
    (p.v / p.m).max(1.0)
}

/// Number of shards GraphChi needs: `K = |E| / M` (a shard's *edges*
/// must fit memory), at least 1 — always at least as many as
/// X-Stream's partitions for `|E| >= |V|` (Fig. 26's density claim).
pub fn graphchi_shards(p: &ModelParams) -> f64 {
    (p.e / p.m).max(1.0)
}

/// X-Stream I/O cost of one scatter-gather iteration:
/// `(|V| + |E|)/B + (|U|/B) * log_{M/B}(K)` — streaming the vertices
/// and edges once plus shuffling the update stream down the partition
/// tree (the multi-stage shuffle needs `ceil(log_{M/B} K)` passes out
/// of core; with `K = 1` the updates never leave memory, the §3.2
/// optimization, and the term vanishes as `log 1 = 0`).
pub fn xstream_one_iteration(p: &ModelParams) -> f64 {
    let k = xstream_partitions(p);
    (p.v + p.e) / p.b + (p.u / p.b) * log_base(p.m / p.b, k)
}

/// X-Stream total cost for label propagation: `D` iterations with
/// `|U| <= |E|` (Fig. 26 bounds updates by edges).
pub fn xstream_total(p: &ModelParams) -> f64 {
    let k = xstream_partitions(p);
    p.d * ((p.v + p.e) / p.b + (p.e / p.b) * log_base(p.m / p.b, k))
}

/// GraphChi I/O cost of one iteration: `|E|/B + K^2` — every shard is
/// streamed, plus one (at least) positioned access per sliding window,
/// of which there are `K` per interval over `K` intervals.
pub fn graphchi_one_iteration(p: &ModelParams) -> f64 {
    let k = graphchi_shards(p);
    p.e / p.b + k * k
}

/// GraphChi total: `D` iterations.
pub fn graphchi_total(p: &ModelParams) -> f64 {
    p.d * graphchi_one_iteration(p)
}

/// Pre-processing (sort) cost for index-based systems:
/// `(|E|/B) * log_{M/B}(min(|V|, |E|/M))` — external merge sort of the
/// edge list (Fig. 26, citing Vitter).
pub fn sort_preprocessing(p: &ModelParams) -> f64 {
    let runs = (p.v).min(p.e / p.m).max(2.0);
    (p.e / p.b) * log_base(p.m / p.b, runs).max(1.0)
}

/// Random-access traversal total after sorting: `|V| + |E|` — one
/// block transfer per vertex/edge touched through the index, with no
/// useful spatial batching (Fig. 26's last row; diameter-independent).
pub fn sorted_random_access_total(p: &ModelParams) -> f64 {
    p.v + p.e
}

fn log_base(base: f64, x: f64) -> f64 {
    if x <= 1.0 {
        return 0.0;
    }
    if base <= 1.0 {
        return 1.0;
    }
    (x.ln() / base.ln()).ceil()
}

/// One row of the Fig. 26 comparison, evaluated numerically.
#[derive(Debug, Clone, Copy)]
pub struct CostRow {
    /// Streaming partitions (X-Stream).
    pub xstream_partitions: f64,
    /// Shards (GraphChi).
    pub graphchi_shards: f64,
    /// X-Stream total block transfers.
    pub xstream: f64,
    /// GraphChi total block transfers.
    pub graphchi: f64,
    /// Sort pre-processing block transfers.
    pub sort_pre: f64,
    /// Sorted random-access traversal transfers.
    pub random_access: f64,
}

/// Evaluates all Fig. 26 formulas for one parameter set.
pub fn evaluate(p: &ModelParams) -> CostRow {
    CostRow {
        xstream_partitions: xstream_partitions(p),
        graphchi_shards: graphchi_shards(p),
        xstream: xstream_total(p),
        graphchi: graphchi_total(p),
        sort_pre: sort_preprocessing(p),
        random_access: sorted_random_access_total(p),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(diameter: f64) -> ModelParams {
        // 1B vertices, degree 16, 1 GW memory, 4 KW blocks.
        ModelParams::graph(1e9, 16.0, 1e9, 4096.0, diameter)
    }

    #[test]
    fn xstream_uses_fewer_partitions_than_graphchi_shards() {
        let p = params(10.0);
        assert!(xstream_partitions(&p) <= graphchi_shards(&p));
        // Dense graphs widen the gap (the paper's density claim).
        let dense = ModelParams::graph(1e9, 64.0, 1e9, 4096.0, 10.0);
        assert!(graphchi_shards(&dense) / xstream_partitions(&dense) >= 16.0);
    }

    #[test]
    fn xstream_beats_graphchi_on_ios_regardless_of_diameter() {
        // The Fig. 26 claim is about the out-of-core regime: once
        // |E| >> M, GraphChi's K^2 positioned accesses per iteration
        // (K = |E|/M shards) grow quadratically while X-Stream only
        // pays extra shuffle passes logarithmically in K = |V|/M.
        for d in [1.0, 10.0, 100.0, 6000.0] {
            let p = ModelParams::graph(1e9, 16.0, 1e6, 4096.0, d);
            assert!(
                xstream_total(&p) <= graphchi_total(&p),
                "diameter {d}: {} vs {}",
                xstream_total(&p),
                graphchi_total(&p)
            );
        }
    }

    #[test]
    fn low_diameter_favors_xstream_over_sorting() {
        // The paper: X-Stream does well on low-diameter graphs where it
        // scales better than sort-first solutions.
        let p = params(10.0);
        let stream = xstream_total(&p);
        let sorted = sort_preprocessing(&p) + sorted_random_access_total(&p);
        assert!(
            stream < sorted,
            "low diameter: streaming {stream} vs sorted {sorted}"
        );
    }

    #[test]
    fn huge_diameter_favors_random_access() {
        // The flip side (DIMACS/yahoo-web in the paper): enormous
        // diameters make re-streaming the edge list lose.
        let p = params(100_000.0);
        let stream = xstream_total(&p);
        let sorted = sort_preprocessing(&p) + sorted_random_access_total(&p);
        assert!(stream > sorted, "high diameter should favor the index");
    }

    #[test]
    fn fits_in_memory_needs_one_partition() {
        let p = ModelParams::graph(1e6, 16.0, 1e9, 4096.0, 10.0);
        assert_eq!(xstream_partitions(&p), 1.0);
    }

    #[test]
    fn evaluate_is_consistent() {
        let p = params(16.0);
        let row = evaluate(&p);
        assert_eq!(row.xstream, xstream_total(&p));
        assert_eq!(row.graphchi, graphchi_total(&p));
    }
}
