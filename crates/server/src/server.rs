//! The TCP front end: bounded admission, a single batching executor,
//! per-query timeouts, and graceful drain on shutdown.
//!
//! ```text
//! client ──line──▶ connection thread ──Job──▶ admission queue ──▶ executor
//!                  (parse, admission,         (bounded by           (one thread,
//!                   cache-miss wait)           --max-inflight)       owns engines)
//! ```
//!
//! Every connection gets its own thread; `ping`/`stats` are answered
//! inline, everything else must win an inflight slot (RAII-guarded, so
//! no error path can leak one) and is enqueued. The executor pops the
//! head job and greedily pulls queued jobs of the same traversal
//! family — up to [`LANES`] distinct roots —
//! into one multi-source pass, so concurrent BFS/SSSP clients share a
//! single edge stream. Results are cached by (canonical query,
//! manifest generation); cache hits never start an engine pass.
//!
//! A connection thread waits at most `--query-timeout` for its job's
//! result and then answers a clean timeout error; the executor skips
//! expired jobs (their slot frees when the job drops). On shutdown the
//! listener stops accepting, the executor drains the queue, and
//! [`Server::run`] returns the final counter snapshot.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cache::QueryCache;
use crate::json::Json;
use crate::protocol::{parse_request, render_err, render_ok, Request, MAX_LINE_BYTES};
use crate::service::{GraphService, BFS_UNREACHED, LANES};

/// Server tunables (the `xstream serve` flags).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP port on 127.0.0.1 (0 = ephemeral).
    pub port: u16,
    /// Maximum queued-plus-running queries before admission rejects.
    pub max_inflight: usize,
    /// Per-query result deadline.
    pub query_timeout: Duration,
    /// LRU result-cache capacity (entries; 0 disables).
    pub cache_entries: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            port: 0,
            max_inflight: 32,
            query_timeout: Duration::from_millis(30_000),
            cache_entries: 256,
        }
    }
}

/// Monotonic server counters, readable via the `stats` op.
#[derive(Default)]
struct Counters {
    queries: AtomicU64,
    admitted: AtomicU64,
    rejected: AtomicU64,
    timed_out: AtomicU64,
    parse_errors: AtomicU64,
    cache_hits: AtomicU64,
    engine_runs: AtomicU64,
    scatter_passes: AtomicU64,
    edges_streamed: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    inflight: AtomicU64,
    inflight_peak: AtomicU64,
}

/// Final counter snapshot returned by [`Server::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Request lines received (including inline/parse-failed ones).
    pub queries: u64,
    /// Queries that won an inflight slot.
    pub admitted: u64,
    /// Queries rejected by admission control.
    pub rejected: u64,
    /// Queries whose client saw a timeout error.
    pub timed_out: u64,
    /// Lines rejected by the request parser.
    pub parse_errors: u64,
    /// Queries answered from the result cache.
    pub cache_hits: u64,
    /// Engine runs (multi-source pass, PageRank, or WCC).
    pub engine_runs: u64,
    /// Scatter-gather supersteps across all runs.
    pub scatter_passes: u64,
    /// Total edges streamed across all runs.
    pub edges_streamed: u64,
    /// Executor rounds that batched more than one query.
    pub batches: u64,
    /// Queries served by those multi-query rounds.
    pub batched_queries: u64,
    /// Queued-plus-running queries right now.
    pub inflight: u64,
    /// High-water mark of `inflight`.
    pub inflight_peak: u64,
}

impl Counters {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            parse_errors: self.parse_errors.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            engine_runs: self.engine_runs.load(Ordering::Relaxed),
            scatter_passes: self.scatter_passes.load(Ordering::Relaxed),
            edges_streamed: self.edges_streamed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_queries: self.batched_queries.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            inflight_peak: self.inflight_peak.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// One-paragraph human summary for the CLI's exit message.
    pub fn summary(&self) -> String {
        format!(
            "served {} queries ({} admitted, {} cache hits, {} rejected, {} timed out, \
             {} parse errors)\nengine: {} runs, {} scatter passes, {} edges streamed, \
             {} batched rounds covering {} queries (peak inflight {})",
            self.queries,
            self.admitted,
            self.cache_hits,
            self.rejected,
            self.timed_out,
            self.parse_errors,
            self.engine_runs,
            self.scatter_passes,
            self.edges_streamed,
            self.batches,
            self.batched_queries,
            self.inflight_peak,
        )
    }
}

/// RAII inflight slot: dropping it (response sent, job skipped, error)
/// releases admission capacity. No path can leak a slot.
struct Slot(Arc<Shared>);

impl Drop for Slot {
    fn drop(&mut self) {
        self.0.counters.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

type JobResult = Result<Vec<(String, Json)>, String>;

struct Job {
    request: Request,
    /// Canonical query string; the executor pairs it with the graph
    /// generation to form the full [`crate::cache::CacheKey`].
    key: Option<String>,
    deadline: Instant,
    tx: mpsc::Sender<JobResult>,
    _slot: Slot,
}

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    counters: Counters,
    shutdown: Arc<AtomicBool>,
    opts: ServeOptions,
    num_vertices: usize,
    num_edges: usize,
}

/// A bound, not-yet-running server. Splitting bind from [`Server::run`]
/// lets the CLI print the (possibly ephemeral) listening address
/// before blocking, and lets tests drive an in-process instance.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    service: GraphService,
}

impl Server {
    /// Binds 127.0.0.1 on `opts.port`. The `shutdown` flag is polled
    /// by every loop; setting it makes [`Server::run`] drain and
    /// return.
    pub fn bind(
        service: GraphService,
        opts: ServeOptions,
        shutdown: Arc<AtomicBool>,
    ) -> Result<Server, String> {
        let listener = TcpListener::bind(("127.0.0.1", opts.port))
            .map_err(|e| format!("bind 127.0.0.1:{}: {e}", opts.port))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            counters: Counters::default(),
            shutdown,
            opts,
            num_vertices: service.num_vertices(),
            num_edges: service.num_edges(),
        });
        Ok(Server {
            listener,
            addr,
            shared,
            service,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves until the shutdown flag is set, then drains the queue,
    /// joins every thread, and returns the final counters.
    pub fn run(self) -> StatsSnapshot {
        let Server {
            listener,
            addr: _,
            shared,
            service,
        } = self;
        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || executor_loop(service, shared))
        };
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !shared.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    conns.push(std::thread::spawn(move || connection_loop(stream, shared)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                    // Opportunistically reap finished connections so a
                    // long-lived server doesn't accumulate handles.
                    if conns.len() > 64 {
                        conns.retain(|h| !h.is_finished());
                    }
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        drop(listener); // stop accepting before the drain
        for h in conns {
            let _ = h.join();
        }
        // Connection threads are gone; wake the executor for its drain.
        shared.queue_cv.notify_all();
        let _ = executor.join();
        shared.counters.snapshot()
    }
}

// ---- connection side ----

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    // Short read timeout so the loop can poll the shutdown flag.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Serve every complete line already buffered.
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = buf.drain(..=pos).collect();
            let line = trim_line(&line);
            if line.is_empty() {
                continue;
            }
            if !serve_line(line, &shared, &mut writer) {
                return;
            }
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_LINE_BYTES {
                    let msg = render_err(&None, &format!("line exceeds {MAX_LINE_BYTES} bytes"));
                    let _ = writeln_flush(&mut writer, &msg);
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => return,
        }
    }
}

fn trim_line(line: &[u8]) -> &[u8] {
    let mut line = line;
    while let [rest @ .., b'\n' | b'\r'] = line {
        line = rest;
    }
    line
}

fn writeln_flush(w: &mut TcpStream, line: &str) -> std::io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Handles one request line; returns `false` to drop the connection.
fn serve_line(line: &[u8], shared: &Arc<Shared>, writer: &mut TcpStream) -> bool {
    let c = &shared.counters;
    c.queries.fetch_add(1, Ordering::Relaxed);
    let envelope = match parse_request(line) {
        Ok(env) => env,
        Err((id, msg)) => {
            c.parse_errors.fetch_add(1, Ordering::Relaxed);
            return writeln_flush(writer, &render_err(&id, &msg)).is_ok();
        }
    };
    let id = envelope.id;
    match envelope.request {
        Request::Ping => {
            let fields = vec![("op".to_string(), Json::str("ping"))];
            writeln_flush(writer, &render_ok(&id, fields)).is_ok()
        }
        Request::Stats => {
            let s = c.snapshot();
            let cache = |n: u64| Json::num(n as f64);
            let fields = vec![
                ("op".to_string(), Json::str("stats")),
                ("vertices".to_string(), cache(shared.num_vertices as u64)),
                ("edges".to_string(), cache(shared.num_edges as u64)),
                ("queries".to_string(), cache(s.queries)),
                ("admitted".to_string(), cache(s.admitted)),
                ("rejected".to_string(), cache(s.rejected)),
                ("timed_out".to_string(), cache(s.timed_out)),
                ("parse_errors".to_string(), cache(s.parse_errors)),
                ("cache_hits".to_string(), cache(s.cache_hits)),
                ("engine_runs".to_string(), cache(s.engine_runs)),
                ("scatter_passes".to_string(), cache(s.scatter_passes)),
                ("edges_streamed".to_string(), cache(s.edges_streamed)),
                ("batches".to_string(), cache(s.batches)),
                ("batched_queries".to_string(), cache(s.batched_queries)),
                ("inflight".to_string(), cache(s.inflight)),
                ("inflight_peak".to_string(), cache(s.inflight_peak)),
            ];
            writeln_flush(writer, &render_ok(&id, fields)).is_ok()
        }
        request => {
            if shared.shutdown.load(Ordering::Acquire) {
                return writeln_flush(writer, &render_err(&id, "server is shutting down")).is_ok();
            }
            // Admission: win a slot or get a clean rejection.
            let max = shared.opts.max_inflight as u64;
            let admitted = c
                .inflight
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
                    (cur < max).then_some(cur + 1)
                });
            if admitted.is_err() {
                c.rejected.fetch_add(1, Ordering::Relaxed);
                let msg = format!("server overloaded (max-inflight {max})");
                return writeln_flush(writer, &render_err(&id, &msg)).is_ok();
            }
            let now = admitted.unwrap_or(0) + 1;
            c.inflight_peak.fetch_max(now, Ordering::AcqRel);
            c.admitted.fetch_add(1, Ordering::Relaxed);
            let slot = Slot(Arc::clone(shared));
            let timeout = shared.opts.query_timeout;
            let (tx, rx) = mpsc::channel();
            let job = Job {
                key: request.cache_key(),
                request,
                deadline: Instant::now() + timeout,
                tx,
                _slot: slot,
            };
            {
                let mut q = shared.queue.lock().expect("queue poisoned");
                q.push_back(job);
            }
            shared.queue_cv.notify_one();
            match rx.recv_timeout(timeout) {
                Ok(Ok(fields)) => writeln_flush(writer, &render_ok(&id, fields)).is_ok(),
                Ok(Err(msg)) => writeln_flush(writer, &render_err(&id, &msg)).is_ok(),
                Err(_) => {
                    c.timed_out.fetch_add(1, Ordering::Relaxed);
                    let msg = format!("query timed out after {} ms", timeout.as_millis());
                    writeln_flush(writer, &render_err(&id, &msg)).is_ok()
                }
            }
        }
    }
}

// ---- executor side ----

fn executor_loop(mut service: GraphService, shared: Arc<Shared>) {
    let mut cache = QueryCache::new(shared.opts.cache_entries);
    loop {
        let batch = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if !q.is_empty() {
                    break;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return; // queue empty + shutdown: drained
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("queue poisoned");
                q = guard;
            }
            take_batch(&mut q)
        };
        process_batch(&mut service, &shared, &mut cache, batch);
    }
}

/// Pops the head job plus every queued job of the same traversal
/// family that fits in the lane budget (duplicate roots share lanes).
fn take_batch(q: &mut VecDeque<Job>) -> Vec<Job> {
    let head = q.pop_front().expect("caller checked non-empty");
    let family = head.request.family();
    let mut batch = vec![head];
    let Some(family) = family else {
        return batch;
    };
    let mut roots: Vec<u32> = batch[0].request.root().into_iter().collect();
    let mut i = 0;
    while i < q.len() {
        let candidate = &q[i];
        if candidate.request.family() == Some(family) {
            if let Some(r) = candidate.request.root() {
                if roots.contains(&r) || roots.len() < LANES {
                    if !roots.contains(&r) {
                        roots.push(r);
                    }
                    if let Some(job) = q.remove(i) {
                        batch.push(job);
                    }
                    continue;
                }
            }
        }
        i += 1;
    }
    batch
}

fn process_batch(
    service: &mut GraphService,
    shared: &Arc<Shared>,
    cache: &mut QueryCache,
    batch: Vec<Job>,
) {
    let c = &shared.counters;
    let now = Instant::now();
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        if job.deadline <= now {
            // The client already answered itself with a timeout line;
            // dropping the job frees its slot without an engine pass.
            let _ = job.tx.send(Err("query timed out".into()));
            continue;
        }
        if let Some(key) = &job.key {
            let generation = family_generation(service, &job.request);
            if let Some(fields) = cache.get(&(key.clone(), generation)) {
                c.cache_hits.fetch_add(1, Ordering::Relaxed);
                let _ = job.tx.send(Ok(fields));
                continue;
            }
        }
        live.push(job);
    }
    if live.is_empty() {
        return;
    }
    if live.len() > 1 {
        c.batches.fetch_add(1, Ordering::Relaxed);
        c.batched_queries
            .fetch_add(live.len() as u64, Ordering::Relaxed);
    }
    let outcome = execute(service, shared, &live);
    match outcome {
        Ok(per_job) => {
            for (job, fields) in live.into_iter().zip(per_job) {
                match fields {
                    Ok(fields) => {
                        if let Some(key) = &job.key {
                            // Results are stored under the generation
                            // re-read *after* the run: a family's first
                            // run ingests the graph and seals its
                            // sub-store manifest at a higher generation,
                            // so stamping with the pre-run value would
                            // cache every cold answer under a key that
                            // can never hit again.
                            let generation = family_generation(service, &job.request);
                            cache.put((key.clone(), generation), fields.clone());
                        }
                        let _ = job.tx.send(Ok(fields));
                    }
                    Err(msg) => {
                        let _ = job.tx.send(Err(msg));
                    }
                }
            }
        }
        Err(msg) => {
            for job in live {
                let _ = job.tx.send(Err(msg.clone()));
            }
        }
    }
}

/// The cache generation for one request: the manifest generation of
/// the family sub-store its answer derives from (0 for the memory
/// backend, which never changes under a running server).
fn family_generation(service: &GraphService, request: &Request) -> u64 {
    request
        .store_family()
        .map_or(0, |family| service.generation_of(family))
}

fn note_run(shared: &Arc<Shared>, stats: &xstream_core::RunStats) {
    let c = &shared.counters;
    c.engine_runs.fetch_add(1, Ordering::Relaxed);
    c.scatter_passes
        .fetch_add(stats.num_iterations() as u64, Ordering::Relaxed);
    c.edges_streamed
        .fetch_add(stats.totals().edges_streamed, Ordering::Relaxed);
}

type PerJobFields = Vec<Result<Vec<(String, Json)>, String>>;

/// Executes one homogeneous batch (or a single non-traversal query)
/// and builds each job's response fields.
fn execute(
    service: &mut GraphService,
    shared: &Arc<Shared>,
    jobs: &[Job],
) -> Result<PerJobFields, String> {
    use crate::protocol::Family;
    match jobs[0].request.family() {
        Some(Family::Bfs) => {
            let roots = distinct_roots(jobs);
            let (levels, stats) = service.run_bfs_batch(&roots)?;
            note_run(shared, &stats);
            Ok(jobs
                .iter()
                .map(|job| {
                    let root = job.request.root().expect("traversal job");
                    let lane = roots
                        .iter()
                        .position(|&r| r == root)
                        .expect("root in batch");
                    Ok(bfs_fields(&job.request, &levels[lane]))
                })
                .collect())
        }
        Some(Family::Sssp) => {
            let roots = distinct_roots(jobs);
            let (dists, stats) = service.run_sssp_batch(&roots)?;
            note_run(shared, &stats);
            Ok(jobs
                .iter()
                .map(|job| {
                    let root = job.request.root().expect("traversal job");
                    let lane = roots
                        .iter()
                        .position(|&r| r == root)
                        .expect("root in batch");
                    Ok(sssp_fields(&job.request, &dists[lane]))
                })
                .collect())
        }
        None => {
            debug_assert_eq!(jobs.len(), 1);
            Ok(jobs
                .iter()
                .map(|job| single_query(service, shared, &job.request))
                .collect())
        }
    }
}

fn distinct_roots(jobs: &[Job]) -> Vec<u32> {
    let mut roots = Vec::new();
    for job in jobs {
        if let Some(r) = job.request.root() {
            if !roots.contains(&r) {
                roots.push(r);
            }
        }
    }
    roots
}

fn bfs_fields(request: &Request, levels: &[u32]) -> Vec<(String, Json)> {
    match *request {
        Request::Bfs { root, target } => {
            let reached = levels.iter().filter(|&&l| l != BFS_UNREACHED).count();
            let mut fields = vec![
                ("op".to_string(), Json::str("bfs")),
                ("root".to_string(), Json::num(root as f64)),
                ("reached".to_string(), Json::num(reached as f64)),
            ];
            if let Some(t) = target {
                fields.push(("target".to_string(), Json::num(t as f64)));
                let level = levels.get(t as usize).copied().unwrap_or(BFS_UNREACHED);
                fields.push((
                    "level".to_string(),
                    if level == BFS_UNREACHED {
                        Json::Null
                    } else {
                        Json::num(level as f64)
                    },
                ));
            }
            fields
        }
        Request::Reach { src, dst } => {
            let reachable = levels
                .get(dst as usize)
                .is_some_and(|&l| l != BFS_UNREACHED);
            vec![
                ("op".to_string(), Json::str("reach")),
                ("src".to_string(), Json::num(src as f64)),
                ("dst".to_string(), Json::num(dst as f64)),
                ("reachable".to_string(), Json::Bool(reachable)),
            ]
        }
        _ => unreachable!("non-BFS request in BFS batch"),
    }
}

fn sssp_fields(request: &Request, dists: &[f32]) -> Vec<(String, Json)> {
    match *request {
        Request::Sssp { root, target } => {
            let reachable = dists.iter().filter(|d| d.is_finite()).count();
            let mut fields = vec![
                ("op".to_string(), Json::str("sssp")),
                ("root".to_string(), Json::num(root as f64)),
                ("reachable".to_string(), Json::num(reachable as f64)),
            ];
            if let Some(t) = target {
                fields.push(("target".to_string(), Json::num(t as f64)));
                let d = dists.get(t as usize).copied().unwrap_or(f32::INFINITY);
                fields.push((
                    "dist".to_string(),
                    if d.is_finite() {
                        Json::num(d as f64)
                    } else {
                        Json::Null
                    },
                ));
            }
            fields
        }
        _ => unreachable!("non-SSSP request in SSSP batch"),
    }
}

fn single_query(
    service: &mut GraphService,
    shared: &Arc<Shared>,
    request: &Request,
) -> Result<Vec<(String, Json)>, String> {
    match *request {
        Request::Pagerank { k, iterations } => {
            let (ranks, stats) = service.run_pagerank(iterations)?;
            note_run(shared, &stats);
            let mut order: Vec<u32> = (0..ranks.len() as u32).collect();
            // Rank-descending, vertex-ascending on ties — a total
            // order, so top-k is deterministic.
            order.sort_by(|&a, &b| {
                ranks[b as usize]
                    .total_cmp(&ranks[a as usize])
                    .then(a.cmp(&b))
            });
            let top: Vec<Json> = order
                .iter()
                .take(k)
                .map(|&v| {
                    Json::Arr(vec![
                        Json::num(v as f64),
                        Json::num(ranks[v as usize] as f64),
                    ])
                })
                .collect();
            Ok(vec![
                ("op".to_string(), Json::str("pagerank")),
                (
                    "iterations".to_string(),
                    Json::num(if iterations == 0 {
                        service.iterations as f64
                    } else {
                        iterations as f64
                    }),
                ),
                ("top".to_string(), Json::Arr(top)),
            ])
        }
        Request::SameComponent { u, v } => {
            service.validate_vertex(u)?;
            service.validate_vertex(v)?;
            let (labels, stats) = service.wcc_labels()?;
            if let Some(stats) = stats {
                note_run(shared, &stats);
            }
            Ok(vec![
                ("op".to_string(), Json::str("same-component")),
                ("u".to_string(), Json::num(u as f64)),
                ("v".to_string(), Json::num(v as f64)),
                (
                    "same".to_string(),
                    Json::Bool(labels[u as usize] == labels[v as usize]),
                ),
            ])
        }
        Request::Components => {
            let (labels, stats) = service.wcc_labels()?;
            if let Some(stats) = stats {
                note_run(shared, &stats);
            }
            Ok(vec![
                ("op".to_string(), Json::str("components")),
                (
                    "count".to_string(),
                    Json::num(xstream_algorithms::wcc::count_components(&labels) as f64),
                ),
            ])
        }
        _ => unreachable!("traversal requests are batched"),
    }
}
