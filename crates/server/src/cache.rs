//! LRU result cache keyed by (canonical query, graph generation).
//!
//! The generation component comes from the store's PR 8 manifest:
//! every re-ingest or `scrub --repair` re-seals the manifest with
//! `generation + 1`, so entries computed against an older graph can
//! never be served afterwards — they simply stop being addressable,
//! and the LRU sweep evicts them as fresh-generation entries arrive.

use std::collections::HashMap;

use crate::json::Json;

/// Cache key: canonical query string plus manifest generation.
pub type CacheKey = (String, u64);

/// A bounded LRU map from query keys to response payloads (the
/// response's result fields, without `ok`/`id`).
pub struct QueryCache {
    cap: usize,
    tick: u64,
    entries: HashMap<CacheKey, (u64, Vec<(String, Json)>)>,
}

impl QueryCache {
    /// Creates a cache holding at most `cap` entries (0 disables it).
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Vec<(String, Json)>> {
        self.tick += 1;
        let tick = self.tick;
        let (stamp, fields) = self.entries.get_mut(key)?;
        *stamp = tick;
        Some(fields.clone())
    }

    /// Inserts `key` → `fields`, evicting the least-recently-used
    /// entry when full. The linear eviction scan is fine at the
    /// hundreds-of-entries scale `--cache-entries` configures.
    pub fn put(&mut self, key: CacheKey, fields: Vec<(String, Json)>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.cap && !self.entries.contains_key(&key) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (self.tick, fields));
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields(n: f64) -> Vec<(String, Json)> {
        vec![("v".into(), Json::num(n))]
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = QueryCache::new(2);
        c.put(("a".into(), 0), fields(1.0));
        c.put(("b".into(), 0), fields(2.0));
        // Touch `a` so `b` is the LRU victim.
        assert!(c.get(&("a".into(), 0)).is_some());
        c.put(("c".into(), 0), fields(3.0));
        assert_eq!(c.len(), 2);
        assert!(c.get(&("b".into(), 0)).is_none());
        assert!(c.get(&("a".into(), 0)).is_some());
        assert!(c.get(&("c".into(), 0)).is_some());
    }

    #[test]
    fn generation_partitions_the_keyspace() {
        let mut c = QueryCache::new(8);
        c.put(("q".into(), 1), fields(1.0));
        assert!(c.get(&("q".into(), 2)).is_none(), "stale generation served");
        assert!(c.get(&("q".into(), 1)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = QueryCache::new(0);
        c.put(("q".into(), 0), fields(1.0));
        assert!(c.is_empty());
        assert!(c.get(&("q".into(), 0)).is_none());
    }
}
