//! The line-delimited JSON request/response protocol.
//!
//! One request per line, one response line per request:
//!
//! ```text
//! > {"op":"bfs","root":4,"id":1}
//! < {"ok":true,"op":"bfs","root":4,"reached":951,"id":1}
//! > {"op":"sssp","root":4,"target":17}
//! < {"ok":true,"op":"sssp","root":4,"target":17,"dist":3.25,"reachable":951}
//! > {"op":"reach","src":0,"dst":9}
//! < {"ok":true,"op":"reach","src":0,"dst":9,"reachable":true}
//! > {"op":"pagerank","k":2}
//! < {"ok":true,"op":"pagerank","top":[[7,0.031642],[3,0.019991]],...}
//! > {"op":"nonsense"}
//! < {"ok":false,"error":"unknown op `nonsense`"}
//! ```
//!
//! An optional `id` field of any JSON type is echoed verbatim in the
//! response so clients can pipeline. Malformed lines produce an
//! `{"ok":false,...}` line (with the `id` when one could be salvaged)
//! — never a dropped connection, never a panic.

use crate::json::{parse, Json};

/// A decoded query.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// BFS levels from `root`; `target` asks for one vertex's level.
    Bfs {
        /// Source vertex.
        root: u32,
        /// Optional vertex whose level is reported.
        target: Option<u32>,
    },
    /// Shortest-path distances from `root`.
    Sssp {
        /// Source vertex.
        root: u32,
        /// Optional vertex whose distance is reported.
        target: Option<u32>,
    },
    /// Is `dst` reachable from `src` (directed)?
    Reach {
        /// Start vertex.
        src: u32,
        /// Destination vertex.
        dst: u32,
    },
    /// Are `u` and `v` in the same weakly connected component?
    SameComponent {
        /// First vertex.
        u: u32,
        /// Second vertex.
        v: u32,
    },
    /// Number of weakly connected components.
    Components,
    /// Top-`k` vertices by PageRank after `iterations` supersteps
    /// (`iterations` 0 means the server default).
    Pagerank {
        /// How many top vertices to return.
        k: usize,
        /// Power iterations (0 = server default).
        iterations: usize,
    },
    /// Server counters; answered inline, never queued.
    Stats,
    /// Liveness check; answered inline, never queued.
    Ping,
}

/// Traversal families that batch into one multi-source pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// BFS-level traversals ([`Request::Bfs`], [`Request::Reach`]).
    Bfs,
    /// Weighted-distance traversals ([`Request::Sssp`]).
    Sssp,
}

impl Request {
    /// The batching family, if this query runs as a traversal lane.
    pub fn family(&self) -> Option<Family> {
        match self {
            Request::Bfs { .. } | Request::Reach { .. } => Some(Family::Bfs),
            Request::Sssp { .. } => Some(Family::Sssp),
            _ => None,
        }
    }

    /// The traversal root for batchable queries.
    pub fn root(&self) -> Option<u32> {
        match *self {
            Request::Bfs { root, .. } | Request::Sssp { root, .. } => Some(root),
            Request::Reach { src, .. } => Some(src),
            _ => None,
        }
    }

    /// The family sub-store this query's answer is derived from —
    /// the manifest whose generation keys its cache entries. `None`
    /// for inline ops that touch no store.
    pub fn store_family(&self) -> Option<&'static str> {
        match self {
            Request::Bfs { .. } | Request::Reach { .. } => Some("bfs"),
            Request::Sssp { .. } => Some("sssp"),
            Request::Pagerank { .. } => Some("pagerank"),
            Request::SameComponent { .. } | Request::Components => Some("wcc"),
            Request::Stats | Request::Ping => None,
        }
    }

    /// Canonical cache key, or `None` for uncacheable ops. Combined
    /// with the family sub-store's manifest generation by the cache
    /// layer.
    pub fn cache_key(&self) -> Option<String> {
        match self {
            Request::Bfs { root, target } => Some(format!("bfs:{root}:{target:?}")),
            Request::Sssp { root, target } => Some(format!("sssp:{root}:{target:?}")),
            Request::Reach { src, dst } => Some(format!("reach:{src}:{dst}")),
            Request::SameComponent { u, v } => Some(format!("samecomp:{u}:{v}")),
            Request::Components => Some("components".into()),
            Request::Pagerank { k, iterations } => Some(format!("pagerank:{k}:{iterations}")),
            Request::Stats | Request::Ping => None,
        }
    }
}

/// A request plus its echoed `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Client-chosen correlation id, echoed verbatim.
    pub id: Option<Json>,
    /// The decoded query.
    pub request: Request,
}

/// Hard cap on accepted request lines; longer input is rejected before
/// parsing (the longest legitimate request is well under 1 KiB).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

fn vertex_field(obj: &Json, key: &str) -> Result<u32, String> {
    match obj.get(key) {
        None => Err(format!("missing field `{key}`")),
        Some(v) => v
            .as_u64()
            .filter(|&n| n <= u32::MAX as u64)
            .map(|n| n as u32)
            .ok_or_else(|| format!("field `{key}` must be a vertex id")),
    }
}

fn opt_vertex_field(obj: &Json, key: &str) -> Result<Option<u32>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .filter(|&n| n <= u32::MAX as u64)
            .map(|n| Some(n as u32))
            .ok_or_else(|| format!("field `{key}` must be a vertex id")),
    }
}

fn opt_count_field(obj: &Json, key: &str, default: usize, max: usize) -> Result<usize, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(default),
        Some(v) => v
            .as_u64()
            .filter(|&n| n <= max as u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("field `{key}` must be an integer <= {max}")),
    }
}

/// Parses one request line. The `Err` payload is `(salvaged id,
/// message)` — the id is recovered whenever the line was valid JSON so
/// the error response still correlates.
pub fn parse_request(line: &[u8]) -> Result<Envelope, (Option<Json>, String)> {
    if line.len() > MAX_LINE_BYTES {
        return Err((None, format!("request exceeds {MAX_LINE_BYTES} bytes")));
    }
    let value = parse(line).map_err(|e| (None, format!("invalid JSON: {e}")))?;
    let id = value.get("id").cloned();
    let fail = |msg: String| (id.clone(), msg);
    if !matches!(value, Json::Obj(_)) {
        return Err(fail("request must be a JSON object".into()));
    }
    let op = value
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail("missing string field `op`".into()))?;
    let request = match op {
        "bfs" => Request::Bfs {
            root: vertex_field(&value, "root").map_err(&fail)?,
            target: opt_vertex_field(&value, "target").map_err(&fail)?,
        },
        "sssp" => Request::Sssp {
            root: vertex_field(&value, "root").map_err(&fail)?,
            target: opt_vertex_field(&value, "target").map_err(&fail)?,
        },
        "reach" => Request::Reach {
            src: vertex_field(&value, "src").map_err(&fail)?,
            dst: vertex_field(&value, "dst").map_err(&fail)?,
        },
        "same-component" => Request::SameComponent {
            u: vertex_field(&value, "u").map_err(&fail)?,
            v: vertex_field(&value, "v").map_err(&fail)?,
        },
        "components" => Request::Components,
        "pagerank" => Request::Pagerank {
            k: opt_count_field(&value, "k", 1, 1024).map_err(&fail)?,
            iterations: opt_count_field(&value, "iterations", 0, 10_000).map_err(&fail)?,
        },
        "stats" => Request::Stats,
        "ping" => Request::Ping,
        other => return Err(fail(format!("unknown op `{other}`"))),
    };
    Ok(Envelope { id, request })
}

/// Renders a success response line (no trailing newline): the given
/// fields wrapped with `"ok":true` and the echoed `id`.
pub fn render_ok(id: &Option<Json>, fields: Vec<(String, Json)>) -> String {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields);
    if let Some(id) = id {
        all.push(("id".to_string(), id.clone()));
    }
    Json::Obj(all).render()
}

/// Renders an error response line (no trailing newline).
pub fn render_err(id: &Option<Json>, error: &str) -> String {
    let mut all = vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::str(error)),
    ];
    if let Some(id) = id {
        all.push(("id".to_string(), id.clone()));
    }
    Json::Obj(all).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        let cases: Vec<(&str, Request)> = vec![
            (
                r#"{"op":"bfs","root":3}"#,
                Request::Bfs {
                    root: 3,
                    target: None,
                },
            ),
            (
                r#"{"op":"bfs","root":3,"target":9}"#,
                Request::Bfs {
                    root: 3,
                    target: Some(9),
                },
            ),
            (
                r#"{"op":"sssp","root":0,"target":null}"#,
                Request::Sssp {
                    root: 0,
                    target: None,
                },
            ),
            (
                r#"{"op":"reach","src":1,"dst":2}"#,
                Request::Reach { src: 1, dst: 2 },
            ),
            (
                r#"{"op":"same-component","u":5,"v":6}"#,
                Request::SameComponent { u: 5, v: 6 },
            ),
            (r#"{"op":"components"}"#, Request::Components),
            (
                r#"{"op":"pagerank","k":3,"iterations":5}"#,
                Request::Pagerank {
                    k: 3,
                    iterations: 5,
                },
            ),
            (
                r#"{"op":"pagerank"}"#,
                Request::Pagerank {
                    k: 1,
                    iterations: 0,
                },
            ),
            (r#"{"op":"stats"}"#, Request::Stats),
            (r#"{"op":"ping"}"#, Request::Ping),
        ];
        for (line, want) in cases {
            let env = parse_request(line.as_bytes()).unwrap();
            assert_eq!(env.request, want, "{line}");
        }
    }

    #[test]
    fn id_is_salvaged_from_bad_requests() {
        let err = parse_request(br#"{"op":"warp","id":42}"#).unwrap_err();
        assert_eq!(err.0, Some(Json::Num(42.0)));
        let err = parse_request(br#"{"op":"bfs","id":"x"}"#).unwrap_err();
        assert_eq!(err.0, Some(Json::str("x")));
        // Unparseable line: no id to salvage.
        let err = parse_request(b"\xff{").unwrap_err();
        assert_eq!(err.0, None);
    }

    #[test]
    fn rejects_bad_vertex_ids() {
        for line in [
            r#"{"op":"bfs"}"#,
            r#"{"op":"bfs","root":-1}"#,
            r#"{"op":"bfs","root":1.5}"#,
            r#"{"op":"bfs","root":4294967296}"#,
            r#"{"op":"bfs","root":"zero"}"#,
            r#"{"op":"pagerank","k":1e9}"#,
        ] {
            assert!(parse_request(line.as_bytes()).is_err(), "{line}");
        }
    }

    #[test]
    fn cache_keys_are_distinct() {
        let keys: Vec<_> = [
            Request::Bfs {
                root: 1,
                target: None,
            },
            Request::Bfs {
                root: 1,
                target: Some(2),
            },
            Request::Bfs {
                root: 2,
                target: None,
            },
            Request::Sssp {
                root: 1,
                target: None,
            },
            Request::Reach { src: 1, dst: 2 },
            Request::SameComponent { u: 1, v: 2 },
            Request::Components,
            Request::Pagerank {
                k: 1,
                iterations: 5,
            },
            Request::Pagerank {
                k: 2,
                iterations: 5,
            },
        ]
        .iter()
        .map(|r| r.cache_key().unwrap())
        .collect();
        let unique: std::collections::HashSet<_> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len());
        assert!(Request::Stats.cache_key().is_none());
        assert!(Request::Ping.cache_key().is_none());
    }

    #[test]
    fn responses_echo_ids() {
        let id = Some(Json::Num(7.0));
        let ok = render_ok(&id, vec![("x".into(), Json::num(1.0))]);
        assert_eq!(ok, r#"{"ok":true,"x":1,"id":7}"#);
        let err = render_err(&None, "nope");
        assert_eq!(err, r#"{"ok":false,"error":"nope"}"#);
    }
}
