//! Engine-facing query execution: one [`GraphService`] owns the
//! graph, builds per-query-family engines lazily, and runs batched
//! multi-source traversals on behalf of the server's executor.
//!
//! Engines persist across queries — the graph is ingested once when a
//! family's first query arrives, and every later query of that family
//! re-initializes vertex state via `vertex_map` (O(V)) instead of
//! re-streaming the edge file. The disk backend namespaces each family
//! into its own sub-store under the serve store root (`bfs/`, `sssp/`,
//! `pagerank/`, `wcc/`) so their stream names never collide; each
//! sub-store carries its own PR 8 manifest, and
//! [`GraphService::generation_of`] re-reads a family's manifest from
//! disk on every call so an out-of-band re-ingest or `scrub --repair`
//! invalidates that family's cached answers immediately — without
//! touching the other families' cache entries.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use xstream_algorithms::multi::{run_multi_bfs, run_multi_sssp, MultiBfs, MultiSssp, UNREACHED};
use xstream_algorithms::{pagerank, wcc};
use xstream_core::{EngineConfig, RunStats};
use xstream_disk::{DiskEngine, EdgeIngest};
use xstream_graph::fileio::EdgeFileReader;
use xstream_graph::EdgeList;
use xstream_memory::InMemoryEngine;
use xstream_storage::manifest::{Manifest, MANIFEST_NAME};
use xstream_storage::StreamStore;

/// Traversal lanes per batched pass: up to this many distinct roots
/// share one multi-source frontier run.
pub const LANES: usize = 4;

/// Per-family sub-store directory names under the serve store root.
pub const FAMILY_DIRS: [&str; 4] = ["bfs", "sssp", "pagerank", "wcc"];

type MemBfs = InMemoryEngine<MultiBfs<LANES>>;
type MemSssp = InMemoryEngine<MultiSssp<LANES>>;
type MemPr = InMemoryEngine<pagerank::Pagerank>;
type DiskBfs = DiskEngine<MultiBfs<LANES>>;
type DiskSssp = DiskEngine<MultiSssp<LANES>>;
type DiskPr = DiskEngine<pagerank::Pagerank>;

// One Backend exists per process, owned by the executor thread for the
// server's whole lifetime — the size skew between variants never costs
// a copy.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Memory {
        graph: EdgeList,
        bfs: Option<MemBfs>,
        sssp: Option<MemSssp>,
        pagerank: Option<(MemPr, Vec<u32>)>,
    },
    Disk {
        input: PathBuf,
        root: PathBuf,
        bfs: Option<DiskBfs>,
        sssp: Option<DiskSssp>,
        pagerank: Option<(DiskPr, Vec<u32>)>,
    },
}

/// The query-execution half of `xstream serve`.
pub struct GraphService {
    backend: Backend,
    cfg: EngineConfig,
    num_vertices: usize,
    num_edges: usize,
    /// Default PageRank iteration count (`--iterations`).
    pub iterations: usize,
    /// WCC labels, computed once per generation and shared.
    wcc: Option<(u64, Arc<Vec<u32>>)>,
}

impl GraphService {
    /// Serves an already-loaded in-memory graph. Its generation is
    /// fixed at 0 (no manifest exists to bump).
    pub fn open_memory(graph: EdgeList, cfg: EngineConfig, iterations: usize) -> Self {
        let (num_vertices, num_edges) = (graph.num_vertices(), graph.num_edges());
        Self {
            backend: Backend::Memory {
                graph,
                bfs: None,
                sssp: None,
                pagerank: None,
            },
            cfg,
            num_vertices,
            num_edges,
            iterations,
            wcc: None,
        }
    }

    /// Serves an edge file out-of-core: family engines ingest into
    /// sub-stores under `store_root` on first use.
    pub fn open_disk(
        input: &Path,
        store_root: &Path,
        cfg: EngineConfig,
        iterations: usize,
    ) -> Result<Self, String> {
        let reader =
            EdgeFileReader::open(input).map_err(|e| format!("{}: {e}", input.display()))?;
        Ok(Self {
            backend: Backend::Disk {
                input: input.to_path_buf(),
                root: store_root.to_path_buf(),
                bfs: None,
                sssp: None,
                pagerank: None,
            },
            num_vertices: reader.num_vertices(),
            num_edges: reader.num_edges(),
            cfg,
            iterations,
            wcc: None,
        })
    }

    /// Vertex count of the served graph.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Edge count of the served graph (as ingested; undirected
    /// families stream the doubled expansion).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Current generation of one family's sub-store (a [`FAMILY_DIRS`]
    /// name), re-read from its manifest on every call so external
    /// repairs are seen immediately. Generations are per family — a
    /// family's first-query ingest seals only its own sub-store, which
    /// must not invalidate every other family's cached answers. The
    /// memory backend has no manifests and stays at generation 0.
    pub fn generation_of(&self, family: &str) -> u64 {
        match &self.backend {
            Backend::Memory { .. } => 0,
            Backend::Disk { root, .. } => read_generation(&root.join(family)),
        }
    }

    /// Rejects out-of-range roots before they reach a batch (the
    /// multi-source drivers assert on them).
    pub fn validate_vertex(&self, v: u32) -> Result<(), String> {
        if (v as usize) < self.num_vertices {
            Ok(())
        } else {
            Err(format!(
                "vertex {v} out of range (graph has {} vertices)",
                self.num_vertices
            ))
        }
    }

    fn sub_store(root: &Path, family: &str, cfg: &EngineConfig) -> Result<StreamStore, String> {
        StreamStore::new(&root.join(family), cfg.io_unit)
            .map_err(|e| format!("opening {family} store: {e}"))
    }

    /// Runs one batched BFS pass over up to [`LANES`] distinct roots;
    /// returns lane-major level vectors (one per root, in order) and
    /// the pass statistics.
    pub fn run_bfs_batch(&mut self, roots: &[u32]) -> Result<(Vec<Vec<u32>>, RunStats), String> {
        assert!(!roots.is_empty() && roots.len() <= LANES);
        for &r in roots {
            self.validate_vertex(r)?;
        }
        // Pad unused lanes with the first root: they recompute lane 0
        // for free (no extra active partitions) and are discarded.
        let mut lanes = [roots[0]; LANES];
        lanes[..roots.len()].copy_from_slice(roots);
        let program = MultiBfs::<LANES>::new();
        let states = match &mut self.backend {
            Backend::Memory { graph, bfs, .. } => {
                let engine = ensure_engine(bfs, || {
                    InMemoryEngine::from_graph(graph, &program, self.cfg.clone())
                });
                run_multi_bfs(engine, &program, &lanes)
            }
            Backend::Disk {
                input, root, bfs, ..
            } => {
                let engine = match bfs {
                    Some(e) => e,
                    None => {
                        let store = Self::sub_store(root, "bfs", &self.cfg)?;
                        let e = DiskEngine::from_ingest(
                            store,
                            &EdgeIngest::new(&*input),
                            &program,
                            self.cfg.clone(),
                        )
                        .map_err(|e| format!("bfs ingest: {e}"))?;
                        bfs.insert(e)
                    }
                };
                run_multi_bfs(engine, &program, &lanes)
            }
        };
        let (states, stats) = states;
        let levels = (0..roots.len())
            .map(|lane| states.iter().map(|s| s[lane]).collect())
            .collect();
        Ok((levels, stats))
    }

    /// Runs one batched SSSP pass over up to [`LANES`] distinct roots;
    /// returns lane-major distance vectors and the pass statistics.
    pub fn run_sssp_batch(&mut self, roots: &[u32]) -> Result<(Vec<Vec<f32>>, RunStats), String> {
        assert!(!roots.is_empty() && roots.len() <= LANES);
        for &r in roots {
            self.validate_vertex(r)?;
        }
        let mut lanes = [roots[0]; LANES];
        lanes[..roots.len()].copy_from_slice(roots);
        let program = MultiSssp::<LANES>::new();
        let (dists, stats) = match &mut self.backend {
            Backend::Memory { graph, sssp, .. } => {
                let engine = ensure_engine(sssp, || {
                    InMemoryEngine::from_graph(graph, &program, self.cfg.clone())
                });
                run_multi_sssp(engine, &program, &lanes)
            }
            Backend::Disk {
                input, root, sssp, ..
            } => {
                let engine = match sssp {
                    Some(e) => e,
                    None => {
                        let store = Self::sub_store(root, "sssp", &self.cfg)?;
                        let e = DiskEngine::from_ingest(
                            store,
                            &EdgeIngest::new(&*input),
                            &program,
                            self.cfg.clone(),
                        )
                        .map_err(|e| format!("sssp ingest: {e}"))?;
                        sssp.insert(e)
                    }
                };
                run_multi_sssp(engine, &program, &lanes)
            }
        };
        let out = (0..roots.len())
            .map(|lane| dists.iter().map(|s| s[lane]).collect())
            .collect();
        Ok((out, stats))
    }

    /// Runs PageRank for `iterations` supersteps (0 = server default);
    /// returns per-vertex ranks and run statistics.
    pub fn run_pagerank(&mut self, iterations: usize) -> Result<(Vec<f32>, RunStats), String> {
        let iterations = if iterations == 0 {
            self.iterations
        } else {
            iterations
        };
        let program = pagerank::Pagerank;
        match &mut self.backend {
            Backend::Memory {
                graph,
                pagerank: pr,
                ..
            } => {
                let (engine, degrees) = match pr {
                    Some(pair) => pair,
                    None => {
                        let degrees = graph.out_degrees();
                        let engine = InMemoryEngine::from_graph(graph, &program, self.cfg.clone());
                        pr.insert((engine, degrees))
                    }
                };
                Ok(pagerank::run(engine, &program, degrees, iterations))
            }
            Backend::Disk {
                input,
                root,
                pagerank: pr,
                ..
            } => {
                let (engine, degrees) = match pr {
                    Some(pair) => pair,
                    None => {
                        let store = Self::sub_store(root, "pagerank", &self.cfg)?;
                        // Degrees fold into the ingest pass, as in the
                        // one-shot CLI path.
                        let counts = Arc::new(Mutex::new(vec![0u32; self.num_vertices]));
                        let ingest = {
                            let counts = Arc::clone(&counts);
                            EdgeIngest::new(&*input).with_observer(move |chunk| {
                                let mut d = counts.lock().expect("degree counter poisoned");
                                for e in chunk {
                                    d[e.src as usize] += 1;
                                }
                            })
                        };
                        let engine =
                            DiskEngine::from_ingest(store, &ingest, &program, self.cfg.clone())
                                .map_err(|e| format!("pagerank ingest: {e}"))?;
                        let degrees =
                            std::mem::take(&mut *counts.lock().expect("degree counter poisoned"));
                        pr.insert((engine, degrees))
                    }
                };
                Ok(pagerank::run(engine, &program, degrees, iterations))
            }
        }
    }

    /// Weakly-connected-component labels, computed once per graph
    /// generation (over the undirected expansion) and shared. Returns
    /// the labels and the run statistics when this call computed them.
    pub fn wcc_labels(&mut self) -> Result<(Arc<Vec<u32>>, Option<RunStats>), String> {
        let generation = self.generation_of("wcc");
        if let Some((cached_gen, labels)) = &self.wcc {
            if *cached_gen == generation {
                return Ok((Arc::clone(labels), None));
            }
        }
        let program = wcc::Wcc::new();
        let (labels, stats) = match &mut self.backend {
            Backend::Memory { graph, .. } => {
                // Transient engine: labels are immutable per
                // generation, so the doubled edge copy is dropped
                // right after the run.
                let und = graph.to_undirected();
                let mut engine = InMemoryEngine::from_graph(&und, &program, self.cfg.clone());
                wcc::run(&mut engine, &program)
            }
            Backend::Disk { input, root, .. } => {
                let store = Self::sub_store(root, "wcc", &self.cfg)?;
                let mut engine = DiskEngine::from_ingest(
                    store,
                    &EdgeIngest::undirected(&*input),
                    &program,
                    self.cfg.clone(),
                )
                .map_err(|e| format!("wcc ingest: {e}"))?;
                wcc::run(&mut engine, &program)
            }
        };
        let labels = Arc::new(labels);
        // Stamp the cached labels with the generation observed *after*
        // the run: on the disk backend every WCC run ingests the wcc
        // sub-store afresh and seals its manifest at a higher
        // generation, so the pre-run value would mark these labels
        // stale forever.
        self.wcc = Some((self.generation_of("wcc"), Arc::clone(&labels)));
        Ok((labels, Some(stats)))
    }
}

fn ensure_engine<E>(slot: &mut Option<E>, build: impl FnOnce() -> E) -> &mut E {
    if slot.is_none() {
        *slot = Some(build());
    }
    slot.as_mut().expect("just filled")
}

fn read_generation(dir: &Path) -> u64 {
    let Ok(bytes) = std::fs::read(dir.join(MANIFEST_NAME)) else {
        return 0;
    };
    Manifest::decode(&bytes).map(|m| m.generation).unwrap_or(0)
}

/// Level sentinel re-exported for response building.
pub const BFS_UNREACHED: u32 = UNREACHED;

#[cfg(test)]
mod tests {
    use super::*;
    use xstream_algorithms::bfs;
    use xstream_graph::generators;

    fn cfg() -> EngineConfig {
        EngineConfig::default().with_threads(2).with_partitions(4)
    }

    #[test]
    fn memory_service_matches_single_runs_and_reuses_engines() {
        let g = generators::erdos_renyi(200, 1200, 3);
        let mut svc = GraphService::open_memory(g.clone(), cfg(), 5);
        let (levels, _) = svc.run_bfs_batch(&[0, 5, 9]).unwrap();
        assert_eq!(levels.len(), 3);
        for (i, &root) in [0u32, 5, 9].iter().enumerate() {
            let (single, _) = bfs::bfs_in_memory(&g, root, cfg());
            assert_eq!(levels[i], single, "root {root}");
        }
        // Second batch reuses the engine (no rebuild): still correct.
        let (levels2, _) = svc.run_bfs_batch(&[7]).unwrap();
        let (single7, _) = bfs::bfs_in_memory(&g, 7, cfg());
        assert_eq!(levels2[0], single7);
    }

    #[test]
    fn wcc_labels_cached_per_generation() {
        let g = generators::erdos_renyi(100, 300, 11);
        let mut svc = GraphService::open_memory(g, cfg(), 5);
        let (l1, stats1) = svc.wcc_labels().unwrap();
        assert!(stats1.is_some(), "first call computes");
        let (l2, stats2) = svc.wcc_labels().unwrap();
        assert!(stats2.is_none(), "second call is served from cache");
        assert!(Arc::ptr_eq(&l1, &l2));
    }

    #[test]
    fn out_of_range_roots_are_rejected_not_panicked() {
        let g = generators::path(10);
        let mut svc = GraphService::open_memory(g, cfg(), 5);
        assert!(svc.run_bfs_batch(&[10]).is_err());
        assert!(svc.run_sssp_batch(&[99]).is_err());
    }
}
