//! Long-lived graph query service for `xstream serve`.
//!
//! A one-shot `xstream run` pays the full ingest for every query; the
//! server ingests once and answers many. The pieces, bottom to top:
//!
//! - [`json`] — panic-free JSON parsing/serialization (no serde in the
//!   dependency policy; the parser is fuzzed in `tests/proptests.rs`).
//! - [`protocol`] — the line-delimited request/response schema.
//! - [`cache`] — an LRU of results keyed by (query, manifest
//!   generation), so a re-ingest or `scrub --repair` invalidates
//!   everything computed against the old graph.
//! - [`service`] — lazy per-query-family engines over either backend,
//!   including the batched multi-source BFS/SSSP entry points.
//! - [`server`] — the TCP front end: bounded admission, one batching
//!   executor, per-query timeouts, graceful drain on shutdown.

#![deny(missing_docs)]

pub mod cache;
pub mod json;
pub mod protocol;
pub mod server;
pub mod service;

pub use server::{ServeOptions, Server, StatsSnapshot};
pub use service::{GraphService, LANES};
