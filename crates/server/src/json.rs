//! A minimal, panic-free JSON parser and serializer.
//!
//! The project's dependency policy admits no serde, and the serve
//! protocol must survive arbitrary bytes from untrusted sockets
//! (`tests/proptests.rs` fuzzes this module directly), so the parser
//! is hand-rolled with three hard safety properties:
//!
//! 1. **Never panics** — every input, including invalid UTF-8 and
//!    truncated escapes, returns `Err` rather than unwinding.
//! 2. **Bounded recursion** — nesting beyond [`MAX_DEPTH`] is rejected,
//!    so a line of `[[[[…` cannot blow the stack.
//! 3. **Whole-input** — trailing non-whitespace after the value is an
//!    error, so `{"op":"ping"}garbage` is rejected, not half-read.
//!
//! Numbers are `f64` (like JavaScript); the protocol's vertex ids and
//! generations fit well inside the 2^53 exact-integer range.

/// Maximum nesting depth accepted by [`parse`].
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, duplicate keys keep the last.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience number constructor.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// Looks up `key` in an object; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with no
    /// fractional part within the exact-f64 range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        // Integers render without the trailing `.0`
                        // (vertex ids, counts, generations).
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no Infinity/NaN; null is the lossless-ish
                    // conventional encoding (mirrors JavaScript's
                    // JSON.stringify).
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one complete JSON value from `input` (leading/trailing ASCII
/// whitespace allowed, nothing else). Never panics.
pub fn parse(input: &[u8]) -> Result<Json, String> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.input.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect_literal(&mut self, lit: &[u8], value: Json) -> Result<Json, String> {
        if self.input[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            None => Err("unexpected end of input".into()),
            Some(b'n') => self.expect_literal(b"null", Json::Null),
            Some(b't') => self.expect_literal(b"true", Json::Bool(true)),
            Some(b'f') => self.expect_literal(b"false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("malformed number at offset {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(format!("malformed number at offset {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(format!("malformed number at offset {start}"));
            }
        }
        // The scanned slice is pure ASCII by construction.
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| "non-ascii number".to_string())?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("unparseable number `{text}`"))?;
        if !n.is_finite() {
            return Err(format!("number `{text}` overflows f64"));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, String> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut bytes: Vec<u8> = Vec::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    None => return Err("unterminated escape".into()),
                    Some(b'"') => bytes.push(b'"'),
                    Some(b'\\') => bytes.push(b'\\'),
                    Some(b'/') => bytes.push(b'/'),
                    Some(b'b') => bytes.push(0x08),
                    Some(b'f') => bytes.push(0x0c),
                    Some(b'n') => bytes.push(b'\n'),
                    Some(b'r') => bytes.push(b'\r'),
                    Some(b't') => bytes.push(b'\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xd800..0xdc00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err("lone high surrogate".into());
                            }
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err("invalid low surrogate".into());
                            }
                            let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(c).ok_or("invalid surrogate pair")?
                        } else if (0xdc00..0xe000).contains(&cp) {
                            return Err("lone low surrogate".into());
                        } else {
                            char::from_u32(cp).ok_or("invalid codepoint")?
                        };
                        let mut buf = [0u8; 4];
                        bytes.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                    }
                    Some(b) => return Err(format!("invalid escape \\{}", b as char)),
                },
                Some(b) if b < 0x20 => return Err("raw control byte in string".into()),
                Some(b) => bytes.push(b),
            }
        }
        String::from_utf8(bytes).map_err(|_| "string is not valid UTF-8".into())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or("truncated \\u escape")?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err("non-hex digit in \\u escape".into()),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err("expected `,` or `]` in array".into()),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err("expected string key in object".into());
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err("expected `:` after object key".into());
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(fields)),
                _ => return Err("expected `,` or `}` in object".into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for text in [
            r#"null"#,
            r#"true"#,
            r#"-12"#,
            r#"{"op":"bfs","root":7,"target":null}"#,
            r#"[1,2.5,"x",[],{"a":[false]}]"#,
        ] {
            let v = parse(text.as_bytes()).unwrap();
            assert_eq!(parse(v.render().as_bytes()).unwrap(), v);
        }
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            &b""[..],
            b"{",
            b"[1,]",
            b"{\"a\" 1}",
            b"nul",
            b"1 2",
            b"\"\\u12\"",
            b"\"\\ud800\"",
            b"{\"a\":1}x",
            b"+5",
            b"\x00",
            b"\xff\xfe",
            b"1e",
            b"1e999",
        ] {
            assert!(parse(bad).is_err(), "{:?} should fail", bad);
        }
    }

    #[test]
    fn depth_is_bounded() {
        let mut deep = Vec::new();
        deep.extend(std::iter::repeat_n(b'[', 100));
        deep.extend(std::iter::repeat_n(b']', 100));
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(br#""a\n\t\"\\ \u00e9 \ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\t\"\\ \u{e9} \u{1f600}");
        assert_eq!(parse(v.render().as_bytes()).unwrap(), v);
    }

    #[test]
    fn get_prefers_last_duplicate() {
        let v = parse(br#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
    }
}
