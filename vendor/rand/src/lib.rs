//! Minimal API-compatible stand-in for the `rand` crate (vendored
//! because the build environment has no network access — see
//! `vendor/README.md`).
//!
//! Provides the surface this workspace uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension with
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256++
//! (not the real `StdRng`'s ChaCha12 — streams differ from upstream,
//! which is fine: every consumer in this workspace only needs a
//! self-consistent deterministic stream for a given seed).

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampled uniformly by [`Rng::gen`] (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        // 24 uniform mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as $u as u64 + 1;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range_signed!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

/// Convenience extension over [`RngCore`] mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution
    /// (uniform over the type; floats uniform in `[0, 1)`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64 (Blackman & Vigna). Not the real
    /// `StdRng` (ChaCha12) — streams are stable per seed but differ
    /// from upstream `rand`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended for xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace treats `SmallRng` and `StdRng` identically.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1i32..=5);
            assert!((1..=5).contains(&w));
            let u = rng.gen_range(0u32..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
