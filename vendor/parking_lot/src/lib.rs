//! Minimal API-compatible stand-in for the `parking_lot` crate, backed
//! by `std::sync` (vendored because the build environment has no
//! network access — see `vendor/README.md`).
//!
//! Semantics match `parking_lot` where this workspace relies on them:
//! locks are not poisoned (a panic while holding the lock simply
//! releases it for the next owner) and guards implement `Deref`/
//! `DerefMut`. On Linux the std primitives are futex-based, so the
//! performance profile is close to the real crate for uncontended and
//! lightly contended locks.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive (non-poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous owner does not poison
    /// the lock.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock (non-poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    #[inline]
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[inline]
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks on the guard until [`notify_one`]/[`notify_all`].
    ///
    /// [`notify_one`]: Condvar::notify_one
    /// [`notify_all`]: Condvar::notify_all
    #[inline]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free std round trip: temporarily move the std guard out
        // to satisfy the std condvar signature, then put it back.
        replace_with(guard, |g| {
            self.inner.wait(g).unwrap_or_else(|e| e.into_inner())
        });
    }

    /// Wakes one waiting thread.
    #[inline]
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiting threads.
    #[inline]
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

/// Applies `f` to the std guard inside `guard`, replacing it with the
/// guard `f` returns (used to adapt the by-value std condvar API to the
/// by-reference parking_lot one).
fn replace_with<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    // Move the inner guard out through a no-drop dance: read the value,
    // run `f`, write the result back. `ManuallyDrop` prevents a double
    // unlock if `f` panics mid-way (the lock then stays held, which is
    // the same behavior as parking_lot's own panic-during-wait).
    use std::mem::ManuallyDrop;
    unsafe {
        // SAFETY: `inner` is read exactly once and overwritten before
        // any other access; `ManuallyDrop` suppresses the duplicate
        // drop of the moved-out value.
        let inner = ManuallyDrop::new(std::ptr::read(&guard.inner));
        let new = f(ManuallyDrop::into_inner(inner));
        std::ptr::write(&mut guard.inner, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_released_after_owner_panics() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poisoning attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
