//! Minimal API-compatible stand-in for the `criterion` crate (vendored
//! because the build environment has no network access — see
//! `vendor/README.md`).
//!
//! Implements the measurement surface this workspace uses: benchmark
//! groups with `throughput`/`sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark runs
//! one warm-up iteration and then `sample_size` timed iterations
//! (time-boxed), reporting min/mean/median nanoseconds per iteration.
//!
//! When the `CRITERION_JSON` environment variable names a path, the
//! collected results are additionally written there as a JSON array —
//! the repository's `BENCH_*.json` baselines are produced this way.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Global results registry drained by [`criterion_main!`]'s finalizer.
static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// One finished benchmark measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Number of timed iterations.
    pub samples: usize,
    /// Fastest iteration in nanoseconds.
    pub min_ns: u64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: u64,
    /// Median nanoseconds per iteration.
    pub median_ns: u64,
    /// Optional throughput denominator for per-element/byte rates.
    pub throughput: Option<Throughput>,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many elements per iteration.
    Elements(u64),
}

/// A parameterized benchmark identifier (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<u64>,
    sample_size: usize,
    time_box: Duration,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then up to `sample_size`
    /// timed calls (stopping early if the time box is exhausted).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed().as_nanos() as u64);
            if started.elapsed() > self.time_box && self.samples.len() >= 3 {
                break;
            }
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    time_box: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 20,
            time_box: Duration::from_secs(10),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        let time_box = self.time_box;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            time_box,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        let time_box = self.time_box;
        run_one(None, id.into(), sample_size, time_box, None, f);
        self
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    time_box: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput denominator reported for this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            id.into(),
            self.sample_size,
            self.time_box,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks `f` under `id` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            Some(&self.name),
            id.into(),
            self.sample_size,
            self.time_box,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (rendering is incremental; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_one<F>(
    group: Option<&str>,
    id: BenchmarkId,
    sample_size: usize,
    time_box: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let full_id = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id,
    };
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        time_box,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        eprintln!("warning: benchmark {full_id} recorded no samples");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<u64>() / samples.len() as u64;
    let mut line = format!(
        "{full_id:<48} min {:>12}  mean {:>12}  median {:>12}  ({} samples)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(median),
        samples.len()
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Bytes(b) => (b, "MB/s"),
            Throughput::Elements(e) => (e, "Melem/s"),
        };
        let rate = count as f64 / (median as f64 / 1e9) / 1e6;
        let _ = write!(line, "  {rate:.1} {unit}");
    }
    println!("{line}");
    RESULTS.lock().unwrap().push(BenchResult {
        id: full_id,
        samples: samples.len(),
        min_ns: min,
        mean_ns: mean,
        median_ns: median,
        throughput,
    });
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Drains all recorded results (used by [`criterion_main!`] and tests).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().unwrap())
}

/// Writes `results` to `path` as a JSON array.
pub fn write_json(path: &str, results: &[BenchResult]) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let (tp_kind, tp_count) = match r.throughput {
            Some(Throughput::Bytes(b)) => ("\"bytes\"", b),
            Some(Throughput::Elements(e)) => ("\"elements\"", e),
            None => ("null", 0),
        };
        let _ = writeln!(
            out,
            "  {{\"id\": {:?}, \"samples\": {}, \"min_ns\": {}, \"mean_ns\": {}, \
             \"median_ns\": {}, \"throughput_kind\": {}, \"throughput_count\": {}}}{}",
            r.id,
            r.samples,
            r.min_ns,
            r.mean_ns,
            r.median_ns,
            tp_kind,
            tp_count,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// Called by [`criterion_main!`] after all groups have run: honors
/// `CRITERION_JSON` if set.
pub fn finalize() {
    let results = take_results();
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if !path.is_empty() {
            match write_json(&path, &results) {
                Ok(()) => eprintln!("criterion: wrote {} results to {path}", results.len()),
                Err(e) => eprintln!("criterion: failed to write {path}: {e}"),
            }
        }
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(5);
            g.throughput(Throughput::Elements(100));
            g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
            g.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        let results = take_results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].id, "unit/noop");
        assert_eq!(results[1].id, "unit/with_input/42");
        assert!(results[0].samples >= 3);
    }

    #[test]
    fn json_output_shape() {
        let r = BenchResult {
            id: "g/f".into(),
            samples: 5,
            min_ns: 1,
            mean_ns: 2,
            median_ns: 2,
            throughput: Some(Throughput::Bytes(64)),
        };
        let dir = std::env::temp_dir().join("criterion_stub_test.json");
        let path = dir.to_str().unwrap();
        write_json(path, &[r]).unwrap();
        let text = std::fs::read_to_string(path).unwrap();
        assert!(text.contains("\"id\": \"g/f\""));
        assert!(text.contains("\"throughput_kind\": \"bytes\""));
        let _ = std::fs::remove_file(path);
    }
}
