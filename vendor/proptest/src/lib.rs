//! Minimal API-compatible stand-in for the `proptest` crate (vendored
//! because the build environment has no network access — see
//! `vendor/README.md`).
//!
//! Supports the surface this workspace uses: integer-range strategies,
//! tuples of strategies, [`strategy::Just`], `prop_flat_map`/`prop_map`,
//! [`collection::vec`], [`arbitrary::any`], the [`proptest!`] macro
//! with `#![proptest_config(...)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! There is **no shrinking**: a failing case panics immediately with
//! the case number and base seed. Set `PROPTEST_SEED=<u64>` to replay a
//! run; cases are derived deterministically from (seed, case index).

pub mod test_runner {
    //! Execution configuration and the deterministic case RNG.

    /// Per-test configuration (`cases` is the only knob implemented).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to execute.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Reads the base seed from `PROPTEST_SEED`, defaulting to a fixed
    /// constant so unconfigured runs are reproducible.
    pub fn env_seed() -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5eed_cafe_f00d_0001)
    }

    /// SplitMix64-based case RNG — small, fast, deterministic.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        x: u64,
    }

    impl TestRng {
        /// The RNG for case `case` of a run with base seed `seed`.
        pub fn for_case(seed: u64, case: u32) -> Self {
            let mut rng = Self {
                x: seed ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            };
            // Discard a few outputs so nearby case indices decorrelate.
            for _ in 0..3 {
                rng.next_u64();
            }
            rng
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample empty range");
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Derives a new strategy from each generated value (the
        /// dependent-generation combinator).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy always yielding a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let first = self.inner.gen_value(rng);
            (self.f)(first).gen_value(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.gen_value(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value (full type range; floats include
        /// every bit pattern, NaNs and all).
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),*) => {
            impl<$($name: Arbitrary),*> Arbitrary for ($($name,)*) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)*)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),* $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let seed = $crate::test_runner::env_seed();
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::test_runner::TestRng::for_case(seed, case);
                    $(
                        let $pat = $crate::strategy::Strategy::gen_value(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )*
                    let run = || $body;
                    if let Err(panic) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest case {case} failed (base seed {seed}; \
                             set PROPTEST_SEED={seed} to replay)"
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    panic!(
                        "prop_assert_eq failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                        stringify!($a),
                        stringify!($b),
                        left,
                        right
                    );
                }
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        match (&$a, &$b) {
            (left, right) => {
                if !(*left == *right) {
                    panic!($($fmt)+);
                }
            }
        }
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (left, right) => {
                if *left == *right {
                    panic!(
                        "prop_assert_ne failed: `{}` == `{}`\n value: {:?}",
                        stringify!($a),
                        stringify!($b),
                        left
                    );
                }
            }
        }
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn flat_map_dependency(
            (n, v) in (1usize..20).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0..n as u32, 0..50))
            })
        ) {
            for &x in &v {
                prop_assert!((x as usize) < n, "element {} out of bound {}", x, n);
            }
        }

        #[test]
        fn tuples_and_any(pair in (any::<u32>(), any::<f32>())) {
            let (a, b) = pair;
            // Smoke: both halves were generated (no panic); floats may
            // be NaN by design.
            let _ = (a, b.to_bits());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u32..100, 1..10);
        let a = s.gen_value(&mut TestRng::for_case(9, 4));
        let b = s.gen_value(&mut TestRng::for_case(9, 4));
        assert_eq!(a, b);
    }
}
