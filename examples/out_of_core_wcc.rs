//! Out-of-core weakly connected components from an edge file.
//!
//! Demonstrates the paper's disk pipeline end to end: write an
//! unordered binary edge list to disk, stream it once into streaming-
//! partition files (no sorting!), then run WCC with a deliberately
//! tiny memory budget so edges and updates live on storage. Prints
//! component counts and the byte-level I/O the engine performed.
//!
//! ```text
//! cargo run --release --example out_of_core_wcc [vertices]
//! ```

use xstream::algorithms::wcc;
use xstream::core::EngineConfig;
use xstream::disk::{DiskEngine, EdgeIngest};
use xstream::graph::fileio::write_edge_file;
use xstream::graph::generators::erdos_renyi;
use xstream::storage::StreamStore;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let graph = erdos_renyi(n, n * 8, 7);

    // 1. The input: a completely unordered *directed* edge list in a
    //    binary file. The undirected doubling WCC needs happens on the
    //    fly during ingest — never in memory.
    let dir = std::env::temp_dir().join("xstream_example_wcc");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let edge_file = dir.join("graph.edges");
    write_edge_file(&edge_file, &graph).expect("write edge file");
    println!(
        "wrote {} unordered edges to {}",
        graph.num_edges(),
        edge_file.display()
    );

    // 2. Pre-processing: one streaming shuffle into partition files,
    //    mirroring each loaded chunk before partition routing.
    let store = StreamStore::new(&dir.join("store"), 1 << 20).expect("stream store");
    let config = EngineConfig::default()
        .with_memory_budget(8 << 20) // far smaller than the graph
        .with_io_unit(1 << 20);
    let program = wcc::Wcc::new();
    let ingest = EdgeIngest::undirected(&edge_file);
    let mut engine =
        DiskEngine::from_ingest(store, &ingest, &program, config).expect("disk engine");
    println!(
        "partitioned into {} streaming partitions",
        engine.partitioner().num_partitions()
    );

    // 3. Scatter-gather until convergence.
    let (labels, stats) = wcc::run(&mut engine, &program);
    println!(
        "WCC: {} components in {} iterations ({:.3}s)",
        wcc::count_components(&labels),
        stats.num_iterations(),
        stats.elapsed().as_secs_f64()
    );

    // 4. The paper's currency: sequential bytes moved.
    let io = engine.store().accounting().snapshot();
    println!(
        "I/O: {:.1} MB read, {:.1} MB written in {} operations",
        io.bytes_read() as f64 / 1e6,
        io.bytes_written() as f64 / 1e6,
        io.total_ops()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
