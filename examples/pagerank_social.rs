//! PageRank over a Twitter-like social graph.
//!
//! Generates a preferential-attachment graph (power-law in-degrees,
//! like the paper's Twitter dataset), runs five PageRank iterations on
//! the multi-threaded in-memory engine, and prints the top-ranked
//! vertices plus the engine statistics the paper reports.
//!
//! ```text
//! cargo run --release --example pagerank_social [vertices]
//! ```

use xstream::algorithms::pagerank;
use xstream::core::EngineConfig;
use xstream::graph::generators::preferential_attachment;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let graph = preferential_attachment(n, 16, 42);
    println!(
        "graph: {} vertices, {} edges (preferential attachment, degree 16)",
        graph.num_vertices(),
        graph.num_edges()
    );

    let (ranks, stats) = pagerank::pagerank_in_memory(&graph, 5, EngineConfig::default());

    let mut by_rank: Vec<(u32, f32)> = ranks
        .iter()
        .enumerate()
        .map(|(v, &r)| (v as u32, r))
        .collect();
    by_rank.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top 10 vertices by rank:");
    for (v, r) in by_rank.iter().take(10) {
        println!("  vertex {v:>8}  rank {r:.6}");
    }

    let totals = stats.totals();
    println!(
        "\n{} iterations in {:.3}s; {} edges streamed, {} updates, \
         runtime/streaming ratio {:.2}",
        stats.num_iterations(),
        stats.elapsed().as_secs_f64(),
        totals.edges_streamed,
        totals.updates_generated,
        stats.runtime_to_streaming_ratio(),
    );
}
