//! Incremental graph ingestion with warm recomputation (paper Fig 17).
//!
//! X-Stream's input is an unordered edge list, so growing a graph is
//! just appending edges; recomputing weakly connected components can
//! start from the previous labels and converges in a handful of
//! iterations instead of re-propagating from scratch.
//!
//! ```text
//! cargo run --release --example streaming_ingest [vertices] [batches]
//! ```

use xstream::algorithms::wcc;
use xstream::core::{Engine, EngineConfig};
use xstream::graph::generators::preferential_attachment;
use xstream::graph::EdgeList;
use xstream::memory::InMemoryEngine;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let batches: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);

    let full = preferential_attachment(n, 8, 99).to_undirected();
    let per = full.num_edges().div_ceil(batches);
    println!(
        "ingesting {} edges in {} batches of ~{}",
        full.num_edges(),
        batches,
        per
    );

    let mut labels: Vec<u32> = (0..full.num_vertices() as u32).collect();
    for b in 0..batches {
        let upto = ((b + 1) * per).min(full.num_edges());
        let acc =
            EdgeList::from_parts_unchecked(full.num_vertices(), full.edges()[..upto].to_vec());
        let program = wcc::Wcc::new();
        let mut engine = InMemoryEngine::from_graph(&acc, &program, EngineConfig::default());
        // Warm start: carry the labels from the previous batch.
        engine.vertex_map(&mut |v, s: &mut wcc::WccState| {
            s.label = labels[v as usize];
            s.active_round = 0;
        });
        let (new_labels, stats) = wcc::run(&mut engine, &program);
        labels = new_labels;
        println!(
            "batch {:>2}: {:>9} edges accumulated, {} components, \
             recomputed in {} iterations ({:.3}s)",
            b + 1,
            upto,
            wcc::count_components(&labels),
            stats.num_iterations(),
            stats.elapsed().as_secs_f64()
        );
    }
}
