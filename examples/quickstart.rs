//! Quickstart: write an edge-centric scatter-gather program and run it
//! on the in-memory engine.
//!
//! The program computes, for every vertex, the minimum vertex id that
//! can reach it ("label propagation") — the building block of weakly
//! connected components. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use xstream::core::{Edge, EdgeProgram, Engine, EngineConfig, Termination, VertexId};
use xstream::graph::edgelist::from_pairs;
use xstream::memory::InMemoryEngine;

/// Per-vertex state is a single label; updates carry candidate labels.
struct MinLabel;

impl EdgeProgram for MinLabel {
    type State = u32;
    type Update = u32;

    fn init(&self, v: VertexId) -> u32 {
        v
    }

    /// Edge-centric scatter: look at one edge, decide whether to send
    /// an update to its destination. No adjacency lists anywhere — the
    /// engine streams edges in whatever order they sit in memory.
    fn scatter(&self, src_state: &u32, _e: &Edge) -> Option<u32> {
        Some(*src_state)
    }

    /// Edge-centric gather: fold one update into the destination
    /// state. Return `true` when the state changed so the engine can
    /// detect convergence.
    fn gather(&self, dst_state: &mut u32, update: &u32) -> bool {
        if update < dst_state {
            *dst_state = *update;
            true
        } else {
            false
        }
    }
}

fn main() {
    // Two triangles joined by a bridge, plus an isolated vertex.
    let graph = from_pairs(
        7,
        &[
            (0, 1),
            (1, 2),
            (2, 0),
            (3, 4),
            (4, 5),
            (5, 3),
            (2, 3), // the bridge
        ],
    )
    .to_undirected();

    let program = MinLabel;
    let mut engine = InMemoryEngine::from_graph(&graph, &program, EngineConfig::default());
    let stats = engine.run(&program, Termination::Converged);

    println!("labels after {} iterations:", stats.num_iterations());
    for (v, label) in engine.states().iter().enumerate() {
        println!("  vertex {v}: component {label}");
    }
    let totals = stats.totals();
    println!(
        "streamed {} edges, sent {} updates ({:.0}% of streamed edges were wasted)",
        totals.edges_streamed,
        totals.updates_generated,
        stats.wasted_pct(),
    );
}
