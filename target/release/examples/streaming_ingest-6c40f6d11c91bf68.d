/root/repo/target/release/examples/streaming_ingest-6c40f6d11c91bf68.d: examples/streaming_ingest.rs

/root/repo/target/release/examples/streaming_ingest-6c40f6d11c91bf68: examples/streaming_ingest.rs

examples/streaming_ingest.rs:
