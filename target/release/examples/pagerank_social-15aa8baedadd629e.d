/root/repo/target/release/examples/pagerank_social-15aa8baedadd629e.d: examples/pagerank_social.rs

/root/repo/target/release/examples/pagerank_social-15aa8baedadd629e: examples/pagerank_social.rs

examples/pagerank_social.rs:
