/root/repo/target/release/examples/alloc_probe-7d46c61fbf89ff58.d: examples/alloc_probe.rs

/root/repo/target/release/examples/alloc_probe-7d46c61fbf89ff58: examples/alloc_probe.rs

examples/alloc_probe.rs:
