/root/repo/target/release/examples/quickstart-18b286b81b368692.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-18b286b81b368692: examples/quickstart.rs

examples/quickstart.rs:
