/root/repo/target/release/examples/out_of_core_wcc-56c82275bd3d209a.d: examples/out_of_core_wcc.rs

/root/repo/target/release/examples/out_of_core_wcc-56c82275bd3d209a: examples/out_of_core_wcc.rs

examples/out_of_core_wcc.rs:
