/root/repo/target/release/deps/xstream-22e52c245a972db2.d: src/lib.rs

/root/repo/target/release/deps/xstream-22e52c245a972db2: src/lib.rs

src/lib.rs:
