/root/repo/target/release/deps/xstream_algorithms-6fa5c56a4d705e8a.d: crates/algorithms/src/lib.rs crates/algorithms/src/als.rs crates/algorithms/src/bfs.rs crates/algorithms/src/bp.rs crates/algorithms/src/conductance.rs crates/algorithms/src/hyperanf.rs crates/algorithms/src/mcst.rs crates/algorithms/src/mis.rs crates/algorithms/src/pagerank.rs crates/algorithms/src/scc.rs crates/algorithms/src/spmv.rs crates/algorithms/src/sssp.rs crates/algorithms/src/util.rs crates/algorithms/src/wcc.rs

/root/repo/target/release/deps/xstream_algorithms-6fa5c56a4d705e8a: crates/algorithms/src/lib.rs crates/algorithms/src/als.rs crates/algorithms/src/bfs.rs crates/algorithms/src/bp.rs crates/algorithms/src/conductance.rs crates/algorithms/src/hyperanf.rs crates/algorithms/src/mcst.rs crates/algorithms/src/mis.rs crates/algorithms/src/pagerank.rs crates/algorithms/src/scc.rs crates/algorithms/src/spmv.rs crates/algorithms/src/sssp.rs crates/algorithms/src/util.rs crates/algorithms/src/wcc.rs

crates/algorithms/src/lib.rs:
crates/algorithms/src/als.rs:
crates/algorithms/src/bfs.rs:
crates/algorithms/src/bp.rs:
crates/algorithms/src/conductance.rs:
crates/algorithms/src/hyperanf.rs:
crates/algorithms/src/mcst.rs:
crates/algorithms/src/mis.rs:
crates/algorithms/src/pagerank.rs:
crates/algorithms/src/scc.rs:
crates/algorithms/src/spmv.rs:
crates/algorithms/src/sssp.rs:
crates/algorithms/src/util.rs:
crates/algorithms/src/wcc.rs:
