/root/repo/target/release/deps/fig11_seqrand-236480c13272e799.d: crates/bench/src/bin/fig11_seqrand.rs

/root/repo/target/release/deps/fig11_seqrand-236480c13272e799: crates/bench/src/bin/fig11_seqrand.rs

crates/bench/src/bin/fig11_seqrand.rs:
