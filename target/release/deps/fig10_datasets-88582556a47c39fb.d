/root/repo/target/release/deps/fig10_datasets-88582556a47c39fb.d: crates/bench/src/bin/fig10_datasets.rs

/root/repo/target/release/deps/fig10_datasets-88582556a47c39fb: crates/bench/src/bin/fig10_datasets.rs

crates/bench/src/bin/fig10_datasets.rs:
