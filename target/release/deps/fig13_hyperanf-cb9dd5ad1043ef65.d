/root/repo/target/release/deps/fig13_hyperanf-cb9dd5ad1043ef65.d: crates/bench/src/bin/fig13_hyperanf.rs

/root/repo/target/release/deps/fig13_hyperanf-cb9dd5ad1043ef65: crates/bench/src/bin/fig13_hyperanf.rs

crates/bench/src/bin/fig13_hyperanf.rs:
