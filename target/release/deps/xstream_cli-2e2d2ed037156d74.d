/root/repo/target/release/deps/xstream_cli-2e2d2ed037156d74.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libxstream_cli-2e2d2ed037156d74.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/libxstream_cli-2e2d2ed037156d74.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
