/root/repo/target/release/deps/xstream_baselines-8d7d25f99ee93cec.d: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs

/root/repo/target/release/deps/libxstream_baselines-8d7d25f99ee93cec.rlib: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs

/root/repo/target/release/deps/libxstream_baselines-8d7d25f99ee93cec.rmeta: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs

crates/baselines/src/lib.rs:
crates/baselines/src/graphchi.rs:
crates/baselines/src/hybrid.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/localqueue.rs:
