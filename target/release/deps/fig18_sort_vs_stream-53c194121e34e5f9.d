/root/repo/target/release/deps/fig18_sort_vs_stream-53c194121e34e5f9.d: crates/bench/src/bin/fig18_sort_vs_stream.rs

/root/repo/target/release/deps/fig18_sort_vs_stream-53c194121e34e5f9: crates/bench/src/bin/fig18_sort_vs_stream.rs

crates/bench/src/bin/fig18_sort_vs_stream.rs:
