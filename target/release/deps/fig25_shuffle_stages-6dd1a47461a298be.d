/root/repo/target/release/deps/fig25_shuffle_stages-6dd1a47461a298be.d: crates/bench/src/bin/fig25_shuffle_stages.rs

/root/repo/target/release/deps/fig25_shuffle_stages-6dd1a47461a298be: crates/bench/src/bin/fig25_shuffle_stages.rs

crates/bench/src/bin/fig25_shuffle_stages.rs:
