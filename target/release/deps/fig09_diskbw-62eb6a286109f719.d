/root/repo/target/release/deps/fig09_diskbw-62eb6a286109f719.d: crates/bench/src/bin/fig09_diskbw.rs

/root/repo/target/release/deps/fig09_diskbw-62eb6a286109f719: crates/bench/src/bin/fig09_diskbw.rs

crates/bench/src/bin/fig09_diskbw.rs:
