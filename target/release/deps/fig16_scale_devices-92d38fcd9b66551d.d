/root/repo/target/release/deps/fig16_scale_devices-92d38fcd9b66551d.d: crates/bench/src/bin/fig16_scale_devices.rs

/root/repo/target/release/deps/fig16_scale_devices-92d38fcd9b66551d: crates/bench/src/bin/fig16_scale_devices.rs

crates/bench/src/bin/fig16_scale_devices.rs:
