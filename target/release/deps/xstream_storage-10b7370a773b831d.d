/root/repo/target/release/deps/xstream_storage-10b7370a773b831d.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs

/root/repo/target/release/deps/xstream_storage-10b7370a773b831d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/diskmodel.rs:
crates/storage/src/filestream.rs:
crates/storage/src/iostats.rs:
crates/storage/src/scratch.rs:
crates/storage/src/shuffle.rs:
crates/storage/src/writer.rs:
