/root/repo/target/release/deps/run_all-57c7294f57b65bb8.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-57c7294f57b65bb8: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
