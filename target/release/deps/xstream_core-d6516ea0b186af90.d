/root/repo/target/release/deps/xstream_core-d6516ea0b186af90.d: crates/core/src/lib.rs crates/core/src/alloc_stats.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/partition.rs crates/core/src/program.rs crates/core/src/record.rs crates/core/src/stats.rs crates/core/src/types.rs

/root/repo/target/release/deps/libxstream_core-d6516ea0b186af90.rlib: crates/core/src/lib.rs crates/core/src/alloc_stats.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/partition.rs crates/core/src/program.rs crates/core/src/record.rs crates/core/src/stats.rs crates/core/src/types.rs

/root/repo/target/release/deps/libxstream_core-d6516ea0b186af90.rmeta: crates/core/src/lib.rs crates/core/src/alloc_stats.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/partition.rs crates/core/src/program.rs crates/core/src/record.rs crates/core/src/stats.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/alloc_stats.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/partition.rs:
crates/core/src/program.rs:
crates/core/src/record.rs:
crates/core/src/stats.rs:
crates/core/src/types.rs:
