/root/repo/target/release/deps/xstream_streams-3f99b6b1bde1e91a.d: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs

/root/repo/target/release/deps/libxstream_streams-3f99b6b1bde1e91a.rlib: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs

/root/repo/target/release/deps/libxstream_streams-3f99b6b1bde1e91a.rmeta: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs

crates/streams/src/lib.rs:
crates/streams/src/semi.rs:
crates/streams/src/source.rs:
crates/streams/src/wstream.rs:
