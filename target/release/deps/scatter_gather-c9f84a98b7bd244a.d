/root/repo/target/release/deps/scatter_gather-c9f84a98b7bd244a.d: crates/bench/benches/scatter_gather.rs

/root/repo/target/release/deps/scatter_gather-c9f84a98b7bd244a: crates/bench/benches/scatter_gather.rs

crates/bench/benches/scatter_gather.rs:
