/root/repo/target/release/deps/xstream_disk-2f53ddc7420c8886.d: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs

/root/repo/target/release/deps/xstream_disk-2f53ddc7420c8886: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs

crates/disk-engine/src/lib.rs:
crates/disk-engine/src/engine.rs:
crates/disk-engine/src/vertices.rs:
