/root/repo/target/release/deps/ablations-d0939b0c5e1a1105.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-d0939b0c5e1a1105: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
