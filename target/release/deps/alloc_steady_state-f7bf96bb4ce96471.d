/root/repo/target/release/deps/alloc_steady_state-f7bf96bb4ce96471.d: tests/alloc_steady_state.rs

/root/repo/target/release/deps/alloc_steady_state-f7bf96bb4ce96471: tests/alloc_steady_state.rs

tests/alloc_steady_state.rs:
