/root/repo/target/release/deps/fig16_scale_devices-71e0f754c5c86b21.d: crates/bench/src/bin/fig16_scale_devices.rs

/root/repo/target/release/deps/fig16_scale_devices-71e0f754c5c86b21: crates/bench/src/bin/fig16_scale_devices.rs

crates/bench/src/bin/fig16_scale_devices.rs:
