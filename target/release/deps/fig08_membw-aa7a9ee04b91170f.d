/root/repo/target/release/deps/fig08_membw-aa7a9ee04b91170f.d: crates/bench/src/bin/fig08_membw.rs

/root/repo/target/release/deps/fig08_membw-aa7a9ee04b91170f: crates/bench/src/bin/fig08_membw.rs

crates/bench/src/bin/fig08_membw.rs:
