/root/repo/target/release/deps/xstream_baselines-ed820ef39dab9a45.d: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs

/root/repo/target/release/deps/xstream_baselines-ed820ef39dab9a45: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs

crates/baselines/src/lib.rs:
crates/baselines/src/graphchi.rs:
crates/baselines/src/hybrid.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/localqueue.rs:
