/root/repo/target/release/deps/fig17_ingest-48cd4679f95c1cf3.d: crates/bench/src/bin/fig17_ingest.rs

/root/repo/target/release/deps/fig17_ingest-48cd4679f95c1cf3: crates/bench/src/bin/fig17_ingest.rs

crates/bench/src/bin/fig17_ingest.rs:
