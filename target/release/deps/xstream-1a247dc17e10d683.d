/root/repo/target/release/deps/xstream-1a247dc17e10d683.d: crates/cli/src/main.rs

/root/repo/target/release/deps/xstream-1a247dc17e10d683: crates/cli/src/main.rs

crates/cli/src/main.rs:
