/root/repo/target/release/deps/fig23_bwtrace-207d7cb7e7854e0c.d: crates/bench/src/bin/fig23_bwtrace.rs

/root/repo/target/release/deps/fig23_bwtrace-207d7cb7e7854e0c: crates/bench/src/bin/fig23_bwtrace.rs

crates/bench/src/bin/fig23_bwtrace.rs:
