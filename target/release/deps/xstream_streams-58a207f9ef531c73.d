/root/repo/target/release/deps/xstream_streams-58a207f9ef531c73.d: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs

/root/repo/target/release/deps/xstream_streams-58a207f9ef531c73: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs

crates/streams/src/lib.rs:
crates/streams/src/semi.rs:
crates/streams/src/source.rs:
crates/streams/src/wstream.rs:
