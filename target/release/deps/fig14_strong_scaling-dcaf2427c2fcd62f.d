/root/repo/target/release/deps/fig14_strong_scaling-dcaf2427c2fcd62f.d: crates/bench/src/bin/fig14_strong_scaling.rs

/root/repo/target/release/deps/fig14_strong_scaling-dcaf2427c2fcd62f: crates/bench/src/bin/fig14_strong_scaling.rs

crates/bench/src/bin/fig14_strong_scaling.rs:
