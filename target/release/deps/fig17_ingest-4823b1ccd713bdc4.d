/root/repo/target/release/deps/fig17_ingest-4823b1ccd713bdc4.d: crates/bench/src/bin/fig17_ingest.rs

/root/repo/target/release/deps/fig17_ingest-4823b1ccd713bdc4: crates/bench/src/bin/fig17_ingest.rs

crates/bench/src/bin/fig17_ingest.rs:
