/root/repo/target/release/deps/run_all-5b9f1d915f31447b.d: crates/bench/src/bin/run_all.rs

/root/repo/target/release/deps/run_all-5b9f1d915f31447b: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
