/root/repo/target/release/deps/xstream_iomodel-ad49836ab0796a13.d: crates/iomodel/src/lib.rs

/root/repo/target/release/deps/xstream_iomodel-ad49836ab0796a13: crates/iomodel/src/lib.rs

crates/iomodel/src/lib.rs:
