/root/repo/target/release/deps/fig23_bwtrace-7f23e9e44c335ce7.d: crates/bench/src/bin/fig23_bwtrace.rs

/root/repo/target/release/deps/fig23_bwtrace-7f23e9e44c335ce7: crates/bench/src/bin/fig23_bwtrace.rs

crates/bench/src/bin/fig23_bwtrace.rs:
