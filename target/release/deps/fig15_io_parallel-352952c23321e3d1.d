/root/repo/target/release/deps/fig15_io_parallel-352952c23321e3d1.d: crates/bench/src/bin/fig15_io_parallel.rs

/root/repo/target/release/deps/fig15_io_parallel-352952c23321e3d1: crates/bench/src/bin/fig15_io_parallel.rs

crates/bench/src/bin/fig15_io_parallel.rs:
