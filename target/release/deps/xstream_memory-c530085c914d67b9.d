/root/repo/target/release/deps/xstream_memory-c530085c914d67b9.d: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs

/root/repo/target/release/deps/libxstream_memory-c530085c914d67b9.rlib: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs

/root/repo/target/release/deps/libxstream_memory-c530085c914d67b9.rmeta: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs

crates/memory-engine/src/lib.rs:
crates/memory-engine/src/engine.rs:
crates/memory-engine/src/pool.rs:
crates/memory-engine/src/queue.rs:
