/root/repo/target/release/deps/buffer_reuse-af60aaa08615b45d.d: tests/buffer_reuse.rs

/root/repo/target/release/deps/buffer_reuse-af60aaa08615b45d: tests/buffer_reuse.rs

tests/buffer_reuse.rs:
