/root/repo/target/release/deps/xstream_core-085665f9cf048b0d.d: crates/core/src/lib.rs crates/core/src/alloc_stats.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/partition.rs crates/core/src/program.rs crates/core/src/record.rs crates/core/src/stats.rs crates/core/src/types.rs

/root/repo/target/release/deps/xstream_core-085665f9cf048b0d: crates/core/src/lib.rs crates/core/src/alloc_stats.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/partition.rs crates/core/src/program.rs crates/core/src/record.rs crates/core/src/stats.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/alloc_stats.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/partition.rs:
crates/core/src/program.rs:
crates/core/src/record.rs:
crates/core/src/stats.rs:
crates/core/src/types.rs:
