/root/repo/target/release/deps/xstream-33d1c631470b0513.d: crates/cli/src/main.rs

/root/repo/target/release/deps/xstream-33d1c631470b0513: crates/cli/src/main.rs

crates/cli/src/main.rs:
