/root/repo/target/release/deps/proptests-f9a7f870025f0e3a.d: tests/proptests.rs

/root/repo/target/release/deps/proptests-f9a7f870025f0e3a: tests/proptests.rs

tests/proptests.rs:
