/root/repo/target/release/deps/fig10_datasets-e4061f0a133aeabe.d: crates/bench/src/bin/fig10_datasets.rs

/root/repo/target/release/deps/fig10_datasets-e4061f0a133aeabe: crates/bench/src/bin/fig10_datasets.rs

crates/bench/src/bin/fig10_datasets.rs:
