/root/repo/target/release/deps/end_to_end-a54f122c1efe92d7.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-a54f122c1efe92d7: tests/end_to_end.rs

tests/end_to_end.rs:
