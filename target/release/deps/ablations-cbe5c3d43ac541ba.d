/root/repo/target/release/deps/ablations-cbe5c3d43ac541ba.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-cbe5c3d43ac541ba: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
