/root/repo/target/release/deps/xstream_graph-58444f3f7daf0088.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/fileio.rs crates/graph/src/generators.rs crates/graph/src/rmat.rs crates/graph/src/sort.rs

/root/repo/target/release/deps/libxstream_graph-58444f3f7daf0088.rlib: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/fileio.rs crates/graph/src/generators.rs crates/graph/src/rmat.rs crates/graph/src/sort.rs

/root/repo/target/release/deps/libxstream_graph-58444f3f7daf0088.rmeta: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/fileio.rs crates/graph/src/generators.rs crates/graph/src/rmat.rs crates/graph/src/sort.rs

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/datasets.rs:
crates/graph/src/edgelist.rs:
crates/graph/src/fileio.rs:
crates/graph/src/generators.rs:
crates/graph/src/rmat.rs:
crates/graph/src/sort.rs:
