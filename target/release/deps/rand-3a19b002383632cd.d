/root/repo/target/release/deps/rand-3a19b002383632cd.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-3a19b002383632cd: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
