/root/repo/target/release/deps/fig08_membw-564e5a349e9fd992.d: crates/bench/src/bin/fig08_membw.rs

/root/repo/target/release/deps/fig08_membw-564e5a349e9fd992: crates/bench/src/bin/fig08_membw.rs

crates/bench/src/bin/fig08_membw.rs:
