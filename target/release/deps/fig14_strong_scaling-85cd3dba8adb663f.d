/root/repo/target/release/deps/fig14_strong_scaling-85cd3dba8adb663f.d: crates/bench/src/bin/fig14_strong_scaling.rs

/root/repo/target/release/deps/fig14_strong_scaling-85cd3dba8adb663f: crates/bench/src/bin/fig14_strong_scaling.rs

crates/bench/src/bin/fig14_strong_scaling.rs:
