/root/repo/target/release/deps/fig18_sort_vs_stream-484d50415591789b.d: crates/bench/src/bin/fig18_sort_vs_stream.rs

/root/repo/target/release/deps/fig18_sort_vs_stream-484d50415591789b: crates/bench/src/bin/fig18_sort_vs_stream.rs

crates/bench/src/bin/fig18_sort_vs_stream.rs:
