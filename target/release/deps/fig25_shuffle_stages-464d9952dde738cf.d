/root/repo/target/release/deps/fig25_shuffle_stages-464d9952dde738cf.d: crates/bench/src/bin/fig25_shuffle_stages.rs

/root/repo/target/release/deps/fig25_shuffle_stages-464d9952dde738cf: crates/bench/src/bin/fig25_shuffle_stages.rs

crates/bench/src/bin/fig25_shuffle_stages.rs:
