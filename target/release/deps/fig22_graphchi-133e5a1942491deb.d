/root/repo/target/release/deps/fig22_graphchi-133e5a1942491deb.d: crates/bench/src/bin/fig22_graphchi.rs

/root/repo/target/release/deps/fig22_graphchi-133e5a1942491deb: crates/bench/src/bin/fig22_graphchi.rs

crates/bench/src/bin/fig22_graphchi.rs:
