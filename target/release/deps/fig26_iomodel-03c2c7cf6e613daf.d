/root/repo/target/release/deps/fig26_iomodel-03c2c7cf6e613daf.d: crates/bench/src/bin/fig26_iomodel.rs

/root/repo/target/release/deps/fig26_iomodel-03c2c7cf6e613daf: crates/bench/src/bin/fig26_iomodel.rs

crates/bench/src/bin/fig26_iomodel.rs:
