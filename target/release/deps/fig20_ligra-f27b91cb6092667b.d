/root/repo/target/release/deps/fig20_ligra-f27b91cb6092667b.d: crates/bench/src/bin/fig20_ligra.rs

/root/repo/target/release/deps/fig20_ligra-f27b91cb6092667b: crates/bench/src/bin/fig20_ligra.rs

crates/bench/src/bin/fig20_ligra.rs:
