/root/repo/target/release/deps/fig26_iomodel-d88d2d006d2a0237.d: crates/bench/src/bin/fig26_iomodel.rs

/root/repo/target/release/deps/fig26_iomodel-d88d2d006d2a0237: crates/bench/src/bin/fig26_iomodel.rs

crates/bench/src/bin/fig26_iomodel.rs:
