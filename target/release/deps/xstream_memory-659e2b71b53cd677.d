/root/repo/target/release/deps/xstream_memory-659e2b71b53cd677.d: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs

/root/repo/target/release/deps/xstream_memory-659e2b71b53cd677: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs

crates/memory-engine/src/lib.rs:
crates/memory-engine/src/engine.rs:
crates/memory-engine/src/pool.rs:
crates/memory-engine/src/queue.rs:
