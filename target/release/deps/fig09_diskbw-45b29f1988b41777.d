/root/repo/target/release/deps/fig09_diskbw-45b29f1988b41777.d: crates/bench/src/bin/fig09_diskbw.rs

/root/repo/target/release/deps/fig09_diskbw-45b29f1988b41777: crates/bench/src/bin/fig09_diskbw.rs

crates/bench/src/bin/fig09_diskbw.rs:
