/root/repo/target/release/deps/fig24_partitions-d80877d3983769ef.d: crates/bench/src/bin/fig24_partitions.rs

/root/repo/target/release/deps/fig24_partitions-d80877d3983769ef: crates/bench/src/bin/fig24_partitions.rs

crates/bench/src/bin/fig24_partitions.rs:
