/root/repo/target/release/deps/failure_injection-09a34852ae3d31a4.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-09a34852ae3d31a4: tests/failure_injection.rs

tests/failure_injection.rs:
