/root/repo/target/release/deps/fig13_hyperanf-a45365713fa91f7b.d: crates/bench/src/bin/fig13_hyperanf.rs

/root/repo/target/release/deps/fig13_hyperanf-a45365713fa91f7b: crates/bench/src/bin/fig13_hyperanf.rs

crates/bench/src/bin/fig13_hyperanf.rs:
