/root/repo/target/release/deps/fig21_memrefs-760717aec40805c7.d: crates/bench/src/bin/fig21_memrefs.rs

/root/repo/target/release/deps/fig21_memrefs-760717aec40805c7: crates/bench/src/bin/fig21_memrefs.rs

crates/bench/src/bin/fig21_memrefs.rs:
