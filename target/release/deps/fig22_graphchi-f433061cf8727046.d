/root/repo/target/release/deps/fig22_graphchi-f433061cf8727046.d: crates/bench/src/bin/fig22_graphchi.rs

/root/repo/target/release/deps/fig22_graphchi-f433061cf8727046: crates/bench/src/bin/fig22_graphchi.rs

crates/bench/src/bin/fig22_graphchi.rs:
