/root/repo/target/release/deps/xstream_cli-1f56ef79eca0aa08.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/release/deps/xstream_cli-1f56ef79eca0aa08: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
