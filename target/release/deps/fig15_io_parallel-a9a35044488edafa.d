/root/repo/target/release/deps/fig15_io_parallel-a9a35044488edafa.d: crates/bench/src/bin/fig15_io_parallel.rs

/root/repo/target/release/deps/fig15_io_parallel-a9a35044488edafa: crates/bench/src/bin/fig15_io_parallel.rs

crates/bench/src/bin/fig15_io_parallel.rs:
