/root/repo/target/release/deps/fig21_memrefs-4ce501505b285508.d: crates/bench/src/bin/fig21_memrefs.rs

/root/repo/target/release/deps/fig21_memrefs-4ce501505b285508: crates/bench/src/bin/fig21_memrefs.rs

crates/bench/src/bin/fig21_memrefs.rs:
