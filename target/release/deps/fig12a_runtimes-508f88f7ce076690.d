/root/repo/target/release/deps/fig12a_runtimes-508f88f7ce076690.d: crates/bench/src/bin/fig12a_runtimes.rs

/root/repo/target/release/deps/fig12a_runtimes-508f88f7ce076690: crates/bench/src/bin/fig12a_runtimes.rs

crates/bench/src/bin/fig12a_runtimes.rs:
