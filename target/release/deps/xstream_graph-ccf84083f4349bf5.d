/root/repo/target/release/deps/xstream_graph-ccf84083f4349bf5.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/fileio.rs crates/graph/src/generators.rs crates/graph/src/rmat.rs crates/graph/src/sort.rs

/root/repo/target/release/deps/xstream_graph-ccf84083f4349bf5: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/fileio.rs crates/graph/src/generators.rs crates/graph/src/rmat.rs crates/graph/src/sort.rs

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/datasets.rs:
crates/graph/src/edgelist.rs:
crates/graph/src/fileio.rs:
crates/graph/src/generators.rs:
crates/graph/src/rmat.rs:
crates/graph/src/sort.rs:
