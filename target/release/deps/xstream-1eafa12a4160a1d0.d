/root/repo/target/release/deps/xstream-1eafa12a4160a1d0.d: src/lib.rs

/root/repo/target/release/deps/libxstream-1eafa12a4160a1d0.rlib: src/lib.rs

/root/repo/target/release/deps/libxstream-1eafa12a4160a1d0.rmeta: src/lib.rs

src/lib.rs:
