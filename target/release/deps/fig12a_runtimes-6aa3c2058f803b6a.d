/root/repo/target/release/deps/fig12a_runtimes-6aa3c2058f803b6a.d: crates/bench/src/bin/fig12a_runtimes.rs

/root/repo/target/release/deps/fig12a_runtimes-6aa3c2058f803b6a: crates/bench/src/bin/fig12a_runtimes.rs

crates/bench/src/bin/fig12a_runtimes.rs:
