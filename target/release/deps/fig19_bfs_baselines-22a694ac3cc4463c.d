/root/repo/target/release/deps/fig19_bfs_baselines-22a694ac3cc4463c.d: crates/bench/src/bin/fig19_bfs_baselines.rs

/root/repo/target/release/deps/fig19_bfs_baselines-22a694ac3cc4463c: crates/bench/src/bin/fig19_bfs_baselines.rs

crates/bench/src/bin/fig19_bfs_baselines.rs:
