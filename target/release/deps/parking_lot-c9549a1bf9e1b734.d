/root/repo/target/release/deps/parking_lot-c9549a1bf9e1b734.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/parking_lot-c9549a1bf9e1b734: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
