/root/repo/target/release/deps/xstream_iomodel-90634867d8c3419c.d: crates/iomodel/src/lib.rs

/root/repo/target/release/deps/libxstream_iomodel-90634867d8c3419c.rlib: crates/iomodel/src/lib.rs

/root/repo/target/release/deps/libxstream_iomodel-90634867d8c3419c.rmeta: crates/iomodel/src/lib.rs

crates/iomodel/src/lib.rs:
