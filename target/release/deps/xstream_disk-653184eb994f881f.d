/root/repo/target/release/deps/xstream_disk-653184eb994f881f.d: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs

/root/repo/target/release/deps/libxstream_disk-653184eb994f881f.rlib: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs

/root/repo/target/release/deps/libxstream_disk-653184eb994f881f.rmeta: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs

crates/disk-engine/src/lib.rs:
crates/disk-engine/src/engine.rs:
crates/disk-engine/src/vertices.rs:
