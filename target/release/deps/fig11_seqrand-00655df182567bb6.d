/root/repo/target/release/deps/fig11_seqrand-00655df182567bb6.d: crates/bench/src/bin/fig11_seqrand.rs

/root/repo/target/release/deps/fig11_seqrand-00655df182567bb6: crates/bench/src/bin/fig11_seqrand.rs

crates/bench/src/bin/fig11_seqrand.rs:
