/root/repo/target/release/deps/fig20_ligra-4b3110cd8dcf7fd1.d: crates/bench/src/bin/fig20_ligra.rs

/root/repo/target/release/deps/fig20_ligra-4b3110cd8dcf7fd1: crates/bench/src/bin/fig20_ligra.rs

crates/bench/src/bin/fig20_ligra.rs:
