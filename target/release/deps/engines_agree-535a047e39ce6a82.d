/root/repo/target/release/deps/engines_agree-535a047e39ce6a82.d: tests/engines_agree.rs

/root/repo/target/release/deps/engines_agree-535a047e39ce6a82: tests/engines_agree.rs

tests/engines_agree.rs:
