/root/repo/target/release/deps/fig24_partitions-209ccaa9edfc1a6b.d: crates/bench/src/bin/fig24_partitions.rs

/root/repo/target/release/deps/fig24_partitions-209ccaa9edfc1a6b: crates/bench/src/bin/fig24_partitions.rs

crates/bench/src/bin/fig24_partitions.rs:
