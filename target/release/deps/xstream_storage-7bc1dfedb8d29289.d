/root/repo/target/release/deps/xstream_storage-7bc1dfedb8d29289.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs

/root/repo/target/release/deps/libxstream_storage-7bc1dfedb8d29289.rlib: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs

/root/repo/target/release/deps/libxstream_storage-7bc1dfedb8d29289.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/diskmodel.rs:
crates/storage/src/filestream.rs:
crates/storage/src/iostats.rs:
crates/storage/src/scratch.rs:
crates/storage/src/shuffle.rs:
crates/storage/src/writer.rs:
