/root/repo/target/release/deps/fig19_bfs_baselines-c253162cde22f4e8.d: crates/bench/src/bin/fig19_bfs_baselines.rs

/root/repo/target/release/deps/fig19_bfs_baselines-c253162cde22f4e8: crates/bench/src/bin/fig19_bfs_baselines.rs

crates/bench/src/bin/fig19_bfs_baselines.rs:
