/root/repo/target/release/libxstream_iomodel.rlib: /root/repo/crates/iomodel/src/lib.rs
