/root/repo/target/debug/deps/fig20_ligra-44ce53ce34f432ba.d: crates/bench/src/bin/fig20_ligra.rs

/root/repo/target/debug/deps/fig20_ligra-44ce53ce34f432ba: crates/bench/src/bin/fig20_ligra.rs

crates/bench/src/bin/fig20_ligra.rs:
