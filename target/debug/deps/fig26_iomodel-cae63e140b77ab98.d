/root/repo/target/debug/deps/fig26_iomodel-cae63e140b77ab98.d: crates/bench/src/bin/fig26_iomodel.rs

/root/repo/target/debug/deps/fig26_iomodel-cae63e140b77ab98: crates/bench/src/bin/fig26_iomodel.rs

crates/bench/src/bin/fig26_iomodel.rs:
