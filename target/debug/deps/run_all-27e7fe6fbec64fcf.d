/root/repo/target/debug/deps/run_all-27e7fe6fbec64fcf.d: crates/bench/src/bin/run_all.rs

/root/repo/target/debug/deps/run_all-27e7fe6fbec64fcf: crates/bench/src/bin/run_all.rs

crates/bench/src/bin/run_all.rs:
