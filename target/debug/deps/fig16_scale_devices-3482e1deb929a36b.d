/root/repo/target/debug/deps/fig16_scale_devices-3482e1deb929a36b.d: crates/bench/src/bin/fig16_scale_devices.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_scale_devices-3482e1deb929a36b.rmeta: crates/bench/src/bin/fig16_scale_devices.rs Cargo.toml

crates/bench/src/bin/fig16_scale_devices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
