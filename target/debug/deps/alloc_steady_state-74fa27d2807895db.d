/root/repo/target/debug/deps/alloc_steady_state-74fa27d2807895db.d: tests/alloc_steady_state.rs

/root/repo/target/debug/deps/alloc_steady_state-74fa27d2807895db: tests/alloc_steady_state.rs

tests/alloc_steady_state.rs:
