/root/repo/target/debug/deps/ablations-e35874a04b577abd.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-e35874a04b577abd.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
