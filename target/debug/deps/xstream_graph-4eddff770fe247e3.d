/root/repo/target/debug/deps/xstream_graph-4eddff770fe247e3.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/fileio.rs crates/graph/src/generators.rs crates/graph/src/rmat.rs crates/graph/src/sort.rs

/root/repo/target/debug/deps/libxstream_graph-4eddff770fe247e3.rlib: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/fileio.rs crates/graph/src/generators.rs crates/graph/src/rmat.rs crates/graph/src/sort.rs

/root/repo/target/debug/deps/libxstream_graph-4eddff770fe247e3.rmeta: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/fileio.rs crates/graph/src/generators.rs crates/graph/src/rmat.rs crates/graph/src/sort.rs

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/datasets.rs:
crates/graph/src/edgelist.rs:
crates/graph/src/fileio.rs:
crates/graph/src/generators.rs:
crates/graph/src/rmat.rs:
crates/graph/src/sort.rs:
