/root/repo/target/debug/deps/fig11_seqrand-a8d2c609379314d0.d: crates/bench/src/bin/fig11_seqrand.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_seqrand-a8d2c609379314d0.rmeta: crates/bench/src/bin/fig11_seqrand.rs Cargo.toml

crates/bench/src/bin/fig11_seqrand.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
