/root/repo/target/debug/deps/fig23_bwtrace-ef6ead10842a6db5.d: crates/bench/src/bin/fig23_bwtrace.rs Cargo.toml

/root/repo/target/debug/deps/libfig23_bwtrace-ef6ead10842a6db5.rmeta: crates/bench/src/bin/fig23_bwtrace.rs Cargo.toml

crates/bench/src/bin/fig23_bwtrace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
