/root/repo/target/debug/deps/fig21_memrefs-99008260ba09a80f.d: crates/bench/src/bin/fig21_memrefs.rs Cargo.toml

/root/repo/target/debug/deps/libfig21_memrefs-99008260ba09a80f.rmeta: crates/bench/src/bin/fig21_memrefs.rs Cargo.toml

crates/bench/src/bin/fig21_memrefs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
