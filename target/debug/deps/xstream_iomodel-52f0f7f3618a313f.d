/root/repo/target/debug/deps/xstream_iomodel-52f0f7f3618a313f.d: crates/iomodel/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_iomodel-52f0f7f3618a313f.rmeta: crates/iomodel/src/lib.rs Cargo.toml

crates/iomodel/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
