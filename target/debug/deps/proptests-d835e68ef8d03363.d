/root/repo/target/debug/deps/proptests-d835e68ef8d03363.d: tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-d835e68ef8d03363.rmeta: tests/proptests.rs Cargo.toml

tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
