/root/repo/target/debug/deps/xstream_streams-1e2fda329b6aa16b.d: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_streams-1e2fda329b6aa16b.rmeta: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs Cargo.toml

crates/streams/src/lib.rs:
crates/streams/src/semi.rs:
crates/streams/src/source.rs:
crates/streams/src/wstream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
