/root/repo/target/debug/deps/fig13_hyperanf-07ee47f0c45fdc8d.d: crates/bench/src/bin/fig13_hyperanf.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_hyperanf-07ee47f0c45fdc8d.rmeta: crates/bench/src/bin/fig13_hyperanf.rs Cargo.toml

crates/bench/src/bin/fig13_hyperanf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
