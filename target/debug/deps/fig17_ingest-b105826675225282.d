/root/repo/target/debug/deps/fig17_ingest-b105826675225282.d: crates/bench/src/bin/fig17_ingest.rs Cargo.toml

/root/repo/target/debug/deps/libfig17_ingest-b105826675225282.rmeta: crates/bench/src/bin/fig17_ingest.rs Cargo.toml

crates/bench/src/bin/fig17_ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
