/root/repo/target/debug/deps/fig26_iomodel-904ebcdb8f8b79f2.d: crates/bench/src/bin/fig26_iomodel.rs Cargo.toml

/root/repo/target/debug/deps/libfig26_iomodel-904ebcdb8f8b79f2.rmeta: crates/bench/src/bin/fig26_iomodel.rs Cargo.toml

crates/bench/src/bin/fig26_iomodel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
