/root/repo/target/debug/deps/fig15_io_parallel-0126f1c7d7c1ecfe.d: crates/bench/src/bin/fig15_io_parallel.rs

/root/repo/target/debug/deps/fig15_io_parallel-0126f1c7d7c1ecfe: crates/bench/src/bin/fig15_io_parallel.rs

crates/bench/src/bin/fig15_io_parallel.rs:
