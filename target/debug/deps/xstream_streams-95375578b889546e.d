/root/repo/target/debug/deps/xstream_streams-95375578b889546e.d: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs

/root/repo/target/debug/deps/xstream_streams-95375578b889546e: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs

crates/streams/src/lib.rs:
crates/streams/src/semi.rs:
crates/streams/src/source.rs:
crates/streams/src/wstream.rs:
