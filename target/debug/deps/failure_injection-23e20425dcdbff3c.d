/root/repo/target/debug/deps/failure_injection-23e20425dcdbff3c.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-23e20425dcdbff3c: tests/failure_injection.rs

tests/failure_injection.rs:
