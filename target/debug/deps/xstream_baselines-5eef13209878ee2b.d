/root/repo/target/debug/deps/xstream_baselines-5eef13209878ee2b.d: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs

/root/repo/target/debug/deps/libxstream_baselines-5eef13209878ee2b.rlib: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs

/root/repo/target/debug/deps/libxstream_baselines-5eef13209878ee2b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs

crates/baselines/src/lib.rs:
crates/baselines/src/graphchi.rs:
crates/baselines/src/hybrid.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/localqueue.rs:
