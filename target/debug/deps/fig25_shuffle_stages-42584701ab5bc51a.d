/root/repo/target/debug/deps/fig25_shuffle_stages-42584701ab5bc51a.d: crates/bench/src/bin/fig25_shuffle_stages.rs

/root/repo/target/debug/deps/fig25_shuffle_stages-42584701ab5bc51a: crates/bench/src/bin/fig25_shuffle_stages.rs

crates/bench/src/bin/fig25_shuffle_stages.rs:
