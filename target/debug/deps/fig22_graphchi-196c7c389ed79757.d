/root/repo/target/debug/deps/fig22_graphchi-196c7c389ed79757.d: crates/bench/src/bin/fig22_graphchi.rs Cargo.toml

/root/repo/target/debug/deps/libfig22_graphchi-196c7c389ed79757.rmeta: crates/bench/src/bin/fig22_graphchi.rs Cargo.toml

crates/bench/src/bin/fig22_graphchi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
