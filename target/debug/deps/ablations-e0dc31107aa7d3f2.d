/root/repo/target/debug/deps/ablations-e0dc31107aa7d3f2.d: crates/bench/src/bin/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-e0dc31107aa7d3f2.rmeta: crates/bench/src/bin/ablations.rs Cargo.toml

crates/bench/src/bin/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
