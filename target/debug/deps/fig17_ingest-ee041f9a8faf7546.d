/root/repo/target/debug/deps/fig17_ingest-ee041f9a8faf7546.d: crates/bench/src/bin/fig17_ingest.rs

/root/repo/target/debug/deps/fig17_ingest-ee041f9a8faf7546: crates/bench/src/bin/fig17_ingest.rs

crates/bench/src/bin/fig17_ingest.rs:
