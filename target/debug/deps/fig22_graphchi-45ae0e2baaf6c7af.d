/root/repo/target/debug/deps/fig22_graphchi-45ae0e2baaf6c7af.d: crates/bench/src/bin/fig22_graphchi.rs

/root/repo/target/debug/deps/fig22_graphchi-45ae0e2baaf6c7af: crates/bench/src/bin/fig22_graphchi.rs

crates/bench/src/bin/fig22_graphchi.rs:
