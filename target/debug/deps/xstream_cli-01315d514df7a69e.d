/root/repo/target/debug/deps/xstream_cli-01315d514df7a69e.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libxstream_cli-01315d514df7a69e.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/libxstream_cli-01315d514df7a69e.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
