/root/repo/target/debug/deps/xstream-4cfcf5e7ac629098.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxstream-4cfcf5e7ac629098.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
