/root/repo/target/debug/deps/xstream_storage-b264f66c673b75df.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs

/root/repo/target/debug/deps/libxstream_storage-b264f66c673b75df.rlib: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs

/root/repo/target/debug/deps/libxstream_storage-b264f66c673b75df.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/diskmodel.rs:
crates/storage/src/filestream.rs:
crates/storage/src/iostats.rs:
crates/storage/src/scratch.rs:
crates/storage/src/shuffle.rs:
crates/storage/src/writer.rs:
