/root/repo/target/debug/deps/fig25_shuffle_stages-4a793106dfd95008.d: crates/bench/src/bin/fig25_shuffle_stages.rs Cargo.toml

/root/repo/target/debug/deps/libfig25_shuffle_stages-4a793106dfd95008.rmeta: crates/bench/src/bin/fig25_shuffle_stages.rs Cargo.toml

crates/bench/src/bin/fig25_shuffle_stages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
