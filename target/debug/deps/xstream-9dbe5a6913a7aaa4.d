/root/repo/target/debug/deps/xstream-9dbe5a6913a7aaa4.d: src/lib.rs

/root/repo/target/debug/deps/libxstream-9dbe5a6913a7aaa4.rlib: src/lib.rs

/root/repo/target/debug/deps/libxstream-9dbe5a6913a7aaa4.rmeta: src/lib.rs

src/lib.rs:
