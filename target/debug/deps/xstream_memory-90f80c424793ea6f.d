/root/repo/target/debug/deps/xstream_memory-90f80c424793ea6f.d: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs

/root/repo/target/debug/deps/xstream_memory-90f80c424793ea6f: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs

crates/memory-engine/src/lib.rs:
crates/memory-engine/src/engine.rs:
crates/memory-engine/src/pool.rs:
crates/memory-engine/src/queue.rs:
