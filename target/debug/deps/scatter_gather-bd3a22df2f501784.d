/root/repo/target/debug/deps/scatter_gather-bd3a22df2f501784.d: crates/bench/benches/scatter_gather.rs Cargo.toml

/root/repo/target/debug/deps/libscatter_gather-bd3a22df2f501784.rmeta: crates/bench/benches/scatter_gather.rs Cargo.toml

crates/bench/benches/scatter_gather.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
