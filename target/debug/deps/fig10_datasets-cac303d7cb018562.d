/root/repo/target/debug/deps/fig10_datasets-cac303d7cb018562.d: crates/bench/src/bin/fig10_datasets.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_datasets-cac303d7cb018562.rmeta: crates/bench/src/bin/fig10_datasets.rs Cargo.toml

crates/bench/src/bin/fig10_datasets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
