/root/repo/target/debug/deps/fig21_memrefs-a9b208e85ccc67c0.d: crates/bench/src/bin/fig21_memrefs.rs

/root/repo/target/debug/deps/fig21_memrefs-a9b208e85ccc67c0: crates/bench/src/bin/fig21_memrefs.rs

crates/bench/src/bin/fig21_memrefs.rs:
