/root/repo/target/debug/deps/xstream_graph-f1347b7e3cadd60c.d: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/fileio.rs crates/graph/src/generators.rs crates/graph/src/rmat.rs crates/graph/src/sort.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_graph-f1347b7e3cadd60c.rmeta: crates/graph/src/lib.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/edgelist.rs crates/graph/src/fileio.rs crates/graph/src/generators.rs crates/graph/src/rmat.rs crates/graph/src/sort.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/csr.rs:
crates/graph/src/datasets.rs:
crates/graph/src/edgelist.rs:
crates/graph/src/fileio.rs:
crates/graph/src/generators.rs:
crates/graph/src/rmat.rs:
crates/graph/src/sort.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
