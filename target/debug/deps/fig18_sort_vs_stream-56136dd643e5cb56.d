/root/repo/target/debug/deps/fig18_sort_vs_stream-56136dd643e5cb56.d: crates/bench/src/bin/fig18_sort_vs_stream.rs Cargo.toml

/root/repo/target/debug/deps/libfig18_sort_vs_stream-56136dd643e5cb56.rmeta: crates/bench/src/bin/fig18_sort_vs_stream.rs Cargo.toml

crates/bench/src/bin/fig18_sort_vs_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
