/root/repo/target/debug/deps/xstream-e46afcd6623a75ba.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxstream-e46afcd6623a75ba.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
