/root/repo/target/debug/deps/fig16_scale_devices-adfddbd8f5408673.d: crates/bench/src/bin/fig16_scale_devices.rs Cargo.toml

/root/repo/target/debug/deps/libfig16_scale_devices-adfddbd8f5408673.rmeta: crates/bench/src/bin/fig16_scale_devices.rs Cargo.toml

crates/bench/src/bin/fig16_scale_devices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
