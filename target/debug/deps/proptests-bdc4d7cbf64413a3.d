/root/repo/target/debug/deps/proptests-bdc4d7cbf64413a3.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-bdc4d7cbf64413a3: tests/proptests.rs

tests/proptests.rs:
