/root/repo/target/debug/deps/fig13_hyperanf-e9b91dbfbe85b997.d: crates/bench/src/bin/fig13_hyperanf.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_hyperanf-e9b91dbfbe85b997.rmeta: crates/bench/src/bin/fig13_hyperanf.rs Cargo.toml

crates/bench/src/bin/fig13_hyperanf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
