/root/repo/target/debug/deps/fig23_bwtrace-64f54df7eaed9ec7.d: crates/bench/src/bin/fig23_bwtrace.rs Cargo.toml

/root/repo/target/debug/deps/libfig23_bwtrace-64f54df7eaed9ec7.rmeta: crates/bench/src/bin/fig23_bwtrace.rs Cargo.toml

crates/bench/src/bin/fig23_bwtrace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
