/root/repo/target/debug/deps/fig09_diskbw-a827457e395e1cef.d: crates/bench/src/bin/fig09_diskbw.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_diskbw-a827457e395e1cef.rmeta: crates/bench/src/bin/fig09_diskbw.rs Cargo.toml

crates/bench/src/bin/fig09_diskbw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
