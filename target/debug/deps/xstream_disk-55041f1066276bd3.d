/root/repo/target/debug/deps/xstream_disk-55041f1066276bd3.d: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_disk-55041f1066276bd3.rmeta: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs Cargo.toml

crates/disk-engine/src/lib.rs:
crates/disk-engine/src/engine.rs:
crates/disk-engine/src/vertices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
