/root/repo/target/debug/deps/fig24_partitions-1d46e2b6fdd11a67.d: crates/bench/src/bin/fig24_partitions.rs

/root/repo/target/debug/deps/fig24_partitions-1d46e2b6fdd11a67: crates/bench/src/bin/fig24_partitions.rs

crates/bench/src/bin/fig24_partitions.rs:
