/root/repo/target/debug/deps/xstream_algorithms-e23b0bbd9ef53158.d: crates/algorithms/src/lib.rs crates/algorithms/src/als.rs crates/algorithms/src/bfs.rs crates/algorithms/src/bp.rs crates/algorithms/src/conductance.rs crates/algorithms/src/hyperanf.rs crates/algorithms/src/mcst.rs crates/algorithms/src/mis.rs crates/algorithms/src/pagerank.rs crates/algorithms/src/scc.rs crates/algorithms/src/spmv.rs crates/algorithms/src/sssp.rs crates/algorithms/src/util.rs crates/algorithms/src/wcc.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_algorithms-e23b0bbd9ef53158.rmeta: crates/algorithms/src/lib.rs crates/algorithms/src/als.rs crates/algorithms/src/bfs.rs crates/algorithms/src/bp.rs crates/algorithms/src/conductance.rs crates/algorithms/src/hyperanf.rs crates/algorithms/src/mcst.rs crates/algorithms/src/mis.rs crates/algorithms/src/pagerank.rs crates/algorithms/src/scc.rs crates/algorithms/src/spmv.rs crates/algorithms/src/sssp.rs crates/algorithms/src/util.rs crates/algorithms/src/wcc.rs Cargo.toml

crates/algorithms/src/lib.rs:
crates/algorithms/src/als.rs:
crates/algorithms/src/bfs.rs:
crates/algorithms/src/bp.rs:
crates/algorithms/src/conductance.rs:
crates/algorithms/src/hyperanf.rs:
crates/algorithms/src/mcst.rs:
crates/algorithms/src/mis.rs:
crates/algorithms/src/pagerank.rs:
crates/algorithms/src/scc.rs:
crates/algorithms/src/spmv.rs:
crates/algorithms/src/sssp.rs:
crates/algorithms/src/util.rs:
crates/algorithms/src/wcc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
