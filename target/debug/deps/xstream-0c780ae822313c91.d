/root/repo/target/debug/deps/xstream-0c780ae822313c91.d: src/lib.rs

/root/repo/target/debug/deps/xstream-0c780ae822313c91: src/lib.rs

src/lib.rs:
