/root/repo/target/debug/deps/fig10_datasets-d51d9cd7e145a43d.d: crates/bench/src/bin/fig10_datasets.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_datasets-d51d9cd7e145a43d.rmeta: crates/bench/src/bin/fig10_datasets.rs Cargo.toml

crates/bench/src/bin/fig10_datasets.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
