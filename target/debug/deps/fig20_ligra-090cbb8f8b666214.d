/root/repo/target/debug/deps/fig20_ligra-090cbb8f8b666214.d: crates/bench/src/bin/fig20_ligra.rs Cargo.toml

/root/repo/target/debug/deps/libfig20_ligra-090cbb8f8b666214.rmeta: crates/bench/src/bin/fig20_ligra.rs Cargo.toml

crates/bench/src/bin/fig20_ligra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
