/root/repo/target/debug/deps/fig08_membw-42e34e37afcfc320.d: crates/bench/src/bin/fig08_membw.rs Cargo.toml

/root/repo/target/debug/deps/libfig08_membw-42e34e37afcfc320.rmeta: crates/bench/src/bin/fig08_membw.rs Cargo.toml

crates/bench/src/bin/fig08_membw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
