/root/repo/target/debug/deps/fig24_partitions-9396cf5115840437.d: crates/bench/src/bin/fig24_partitions.rs Cargo.toml

/root/repo/target/debug/deps/libfig24_partitions-9396cf5115840437.rmeta: crates/bench/src/bin/fig24_partitions.rs Cargo.toml

crates/bench/src/bin/fig24_partitions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
