/root/repo/target/debug/deps/xstream_disk-764abb5bd7081df0.d: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs

/root/repo/target/debug/deps/libxstream_disk-764abb5bd7081df0.rlib: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs

/root/repo/target/debug/deps/libxstream_disk-764abb5bd7081df0.rmeta: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs

crates/disk-engine/src/lib.rs:
crates/disk-engine/src/engine.rs:
crates/disk-engine/src/vertices.rs:
