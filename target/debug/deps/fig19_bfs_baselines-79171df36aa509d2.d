/root/repo/target/debug/deps/fig19_bfs_baselines-79171df36aa509d2.d: crates/bench/src/bin/fig19_bfs_baselines.rs

/root/repo/target/debug/deps/fig19_bfs_baselines-79171df36aa509d2: crates/bench/src/bin/fig19_bfs_baselines.rs

crates/bench/src/bin/fig19_bfs_baselines.rs:
