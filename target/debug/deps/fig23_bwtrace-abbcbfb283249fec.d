/root/repo/target/debug/deps/fig23_bwtrace-abbcbfb283249fec.d: crates/bench/src/bin/fig23_bwtrace.rs

/root/repo/target/debug/deps/fig23_bwtrace-abbcbfb283249fec: crates/bench/src/bin/fig23_bwtrace.rs

crates/bench/src/bin/fig23_bwtrace.rs:
