/root/repo/target/debug/deps/xstream_cli-252ff50ac4418dcc.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_cli-252ff50ac4418dcc.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs Cargo.toml

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
