/root/repo/target/debug/deps/xstream-48a0fc98c08e1255.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/xstream-48a0fc98c08e1255: crates/cli/src/main.rs

crates/cli/src/main.rs:
