/root/repo/target/debug/deps/end_to_end-ad29c830e158383f.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ad29c830e158383f: tests/end_to_end.rs

tests/end_to_end.rs:
