/root/repo/target/debug/deps/xstream_baselines-a83c434f98731df9.d: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_baselines-a83c434f98731df9.rmeta: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/graphchi.rs:
crates/baselines/src/hybrid.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/localqueue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
