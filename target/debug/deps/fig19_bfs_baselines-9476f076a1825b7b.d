/root/repo/target/debug/deps/fig19_bfs_baselines-9476f076a1825b7b.d: crates/bench/src/bin/fig19_bfs_baselines.rs Cargo.toml

/root/repo/target/debug/deps/libfig19_bfs_baselines-9476f076a1825b7b.rmeta: crates/bench/src/bin/fig19_bfs_baselines.rs Cargo.toml

crates/bench/src/bin/fig19_bfs_baselines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
