/root/repo/target/debug/deps/xstream_iomodel-29040526cd1b6517.d: crates/iomodel/src/lib.rs

/root/repo/target/debug/deps/xstream_iomodel-29040526cd1b6517: crates/iomodel/src/lib.rs

crates/iomodel/src/lib.rs:
