/root/repo/target/debug/deps/xstream_memory-ab6d214c650261a3.d: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_memory-ab6d214c650261a3.rmeta: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs Cargo.toml

crates/memory-engine/src/lib.rs:
crates/memory-engine/src/engine.rs:
crates/memory-engine/src/pool.rs:
crates/memory-engine/src/queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
