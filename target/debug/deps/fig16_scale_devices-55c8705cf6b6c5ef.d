/root/repo/target/debug/deps/fig16_scale_devices-55c8705cf6b6c5ef.d: crates/bench/src/bin/fig16_scale_devices.rs

/root/repo/target/debug/deps/fig16_scale_devices-55c8705cf6b6c5ef: crates/bench/src/bin/fig16_scale_devices.rs

crates/bench/src/bin/fig16_scale_devices.rs:
