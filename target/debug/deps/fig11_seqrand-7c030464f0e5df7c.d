/root/repo/target/debug/deps/fig11_seqrand-7c030464f0e5df7c.d: crates/bench/src/bin/fig11_seqrand.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_seqrand-7c030464f0e5df7c.rmeta: crates/bench/src/bin/fig11_seqrand.rs Cargo.toml

crates/bench/src/bin/fig11_seqrand.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
