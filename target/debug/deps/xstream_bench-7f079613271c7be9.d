/root/repo/target/debug/deps/xstream_bench-7f079613271c7be9.d: crates/bench/src/lib.rs crates/bench/src/effort.rs crates/bench/src/figs/mod.rs crates/bench/src/figs/ablations.rs crates/bench/src/figs/fig08_membw.rs crates/bench/src/figs/fig09_diskbw.rs crates/bench/src/figs/fig10_datasets.rs crates/bench/src/figs/fig11_seqrand.rs crates/bench/src/figs/fig12_runtimes.rs crates/bench/src/figs/fig13_hyperanf.rs crates/bench/src/figs/fig14_strong_scaling.rs crates/bench/src/figs/fig15_io_parallel.rs crates/bench/src/figs/fig16_scale_devices.rs crates/bench/src/figs/fig17_ingest.rs crates/bench/src/figs/fig18_sort_vs_stream.rs crates/bench/src/figs/fig19_bfs_baselines.rs crates/bench/src/figs/fig20_ligra.rs crates/bench/src/figs/fig21_memrefs.rs crates/bench/src/figs/fig22_graphchi.rs crates/bench/src/figs/fig23_bwtrace.rs crates/bench/src/figs/fig24_partitions.rs crates/bench/src/figs/fig25_shuffle_stages.rs crates/bench/src/figs/fig26_iomodel.rs crates/bench/src/membw.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_bench-7f079613271c7be9.rmeta: crates/bench/src/lib.rs crates/bench/src/effort.rs crates/bench/src/figs/mod.rs crates/bench/src/figs/ablations.rs crates/bench/src/figs/fig08_membw.rs crates/bench/src/figs/fig09_diskbw.rs crates/bench/src/figs/fig10_datasets.rs crates/bench/src/figs/fig11_seqrand.rs crates/bench/src/figs/fig12_runtimes.rs crates/bench/src/figs/fig13_hyperanf.rs crates/bench/src/figs/fig14_strong_scaling.rs crates/bench/src/figs/fig15_io_parallel.rs crates/bench/src/figs/fig16_scale_devices.rs crates/bench/src/figs/fig17_ingest.rs crates/bench/src/figs/fig18_sort_vs_stream.rs crates/bench/src/figs/fig19_bfs_baselines.rs crates/bench/src/figs/fig20_ligra.rs crates/bench/src/figs/fig21_memrefs.rs crates/bench/src/figs/fig22_graphchi.rs crates/bench/src/figs/fig23_bwtrace.rs crates/bench/src/figs/fig24_partitions.rs crates/bench/src/figs/fig25_shuffle_stages.rs crates/bench/src/figs/fig26_iomodel.rs crates/bench/src/membw.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/effort.rs:
crates/bench/src/figs/mod.rs:
crates/bench/src/figs/ablations.rs:
crates/bench/src/figs/fig08_membw.rs:
crates/bench/src/figs/fig09_diskbw.rs:
crates/bench/src/figs/fig10_datasets.rs:
crates/bench/src/figs/fig11_seqrand.rs:
crates/bench/src/figs/fig12_runtimes.rs:
crates/bench/src/figs/fig13_hyperanf.rs:
crates/bench/src/figs/fig14_strong_scaling.rs:
crates/bench/src/figs/fig15_io_parallel.rs:
crates/bench/src/figs/fig16_scale_devices.rs:
crates/bench/src/figs/fig17_ingest.rs:
crates/bench/src/figs/fig18_sort_vs_stream.rs:
crates/bench/src/figs/fig19_bfs_baselines.rs:
crates/bench/src/figs/fig20_ligra.rs:
crates/bench/src/figs/fig21_memrefs.rs:
crates/bench/src/figs/fig22_graphchi.rs:
crates/bench/src/figs/fig23_bwtrace.rs:
crates/bench/src/figs/fig24_partitions.rs:
crates/bench/src/figs/fig25_shuffle_stages.rs:
crates/bench/src/figs/fig26_iomodel.rs:
crates/bench/src/membw.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
