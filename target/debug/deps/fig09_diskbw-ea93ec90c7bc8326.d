/root/repo/target/debug/deps/fig09_diskbw-ea93ec90c7bc8326.d: crates/bench/src/bin/fig09_diskbw.rs

/root/repo/target/debug/deps/fig09_diskbw-ea93ec90c7bc8326: crates/bench/src/bin/fig09_diskbw.rs

crates/bench/src/bin/fig09_diskbw.rs:
