/root/repo/target/debug/deps/xstream_storage-731e2fe38052ff25.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs

/root/repo/target/debug/deps/xstream_storage-731e2fe38052ff25: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/diskmodel.rs:
crates/storage/src/filestream.rs:
crates/storage/src/iostats.rs:
crates/storage/src/scratch.rs:
crates/storage/src/shuffle.rs:
crates/storage/src/writer.rs:
