/root/repo/target/debug/deps/fig14_strong_scaling-96203eb6cb162d52.d: crates/bench/src/bin/fig14_strong_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_strong_scaling-96203eb6cb162d52.rmeta: crates/bench/src/bin/fig14_strong_scaling.rs Cargo.toml

crates/bench/src/bin/fig14_strong_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
