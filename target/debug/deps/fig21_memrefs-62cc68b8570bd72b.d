/root/repo/target/debug/deps/fig21_memrefs-62cc68b8570bd72b.d: crates/bench/src/bin/fig21_memrefs.rs Cargo.toml

/root/repo/target/debug/deps/libfig21_memrefs-62cc68b8570bd72b.rmeta: crates/bench/src/bin/fig21_memrefs.rs Cargo.toml

crates/bench/src/bin/fig21_memrefs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
