/root/repo/target/debug/deps/xstream_cli-40310e56c08e6558.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

/root/repo/target/debug/deps/xstream_cli-40310e56c08e6558: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
