/root/repo/target/debug/deps/xstream-a85fc2683874775b.d: crates/cli/src/main.rs Cargo.toml

/root/repo/target/debug/deps/libxstream-a85fc2683874775b.rmeta: crates/cli/src/main.rs Cargo.toml

crates/cli/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
