/root/repo/target/debug/deps/fig14_strong_scaling-e53dc70aaf35256b.d: crates/bench/src/bin/fig14_strong_scaling.rs

/root/repo/target/debug/deps/fig14_strong_scaling-e53dc70aaf35256b: crates/bench/src/bin/fig14_strong_scaling.rs

crates/bench/src/bin/fig14_strong_scaling.rs:
