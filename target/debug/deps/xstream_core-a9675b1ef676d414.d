/root/repo/target/debug/deps/xstream_core-a9675b1ef676d414.d: crates/core/src/lib.rs crates/core/src/alloc_stats.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/partition.rs crates/core/src/program.rs crates/core/src/record.rs crates/core/src/stats.rs crates/core/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_core-a9675b1ef676d414.rmeta: crates/core/src/lib.rs crates/core/src/alloc_stats.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/partition.rs crates/core/src/program.rs crates/core/src/record.rs crates/core/src/stats.rs crates/core/src/types.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/alloc_stats.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/partition.rs:
crates/core/src/program.rs:
crates/core/src/record.rs:
crates/core/src/stats.rs:
crates/core/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
