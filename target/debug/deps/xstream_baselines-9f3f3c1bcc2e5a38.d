/root/repo/target/debug/deps/xstream_baselines-9f3f3c1bcc2e5a38.d: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs

/root/repo/target/debug/deps/xstream_baselines-9f3f3c1bcc2e5a38: crates/baselines/src/lib.rs crates/baselines/src/graphchi.rs crates/baselines/src/hybrid.rs crates/baselines/src/ligra.rs crates/baselines/src/localqueue.rs

crates/baselines/src/lib.rs:
crates/baselines/src/graphchi.rs:
crates/baselines/src/hybrid.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/localqueue.rs:
