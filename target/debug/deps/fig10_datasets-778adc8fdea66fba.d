/root/repo/target/debug/deps/fig10_datasets-778adc8fdea66fba.d: crates/bench/src/bin/fig10_datasets.rs

/root/repo/target/debug/deps/fig10_datasets-778adc8fdea66fba: crates/bench/src/bin/fig10_datasets.rs

crates/bench/src/bin/fig10_datasets.rs:
