/root/repo/target/debug/deps/xstream_core-6e6e6e9eb9945426.d: crates/core/src/lib.rs crates/core/src/alloc_stats.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/partition.rs crates/core/src/program.rs crates/core/src/record.rs crates/core/src/stats.rs crates/core/src/types.rs

/root/repo/target/debug/deps/xstream_core-6e6e6e9eb9945426: crates/core/src/lib.rs crates/core/src/alloc_stats.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/error.rs crates/core/src/partition.rs crates/core/src/program.rs crates/core/src/record.rs crates/core/src/stats.rs crates/core/src/types.rs

crates/core/src/lib.rs:
crates/core/src/alloc_stats.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/error.rs:
crates/core/src/partition.rs:
crates/core/src/program.rs:
crates/core/src/record.rs:
crates/core/src/stats.rs:
crates/core/src/types.rs:
