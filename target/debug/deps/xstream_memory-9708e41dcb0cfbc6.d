/root/repo/target/debug/deps/xstream_memory-9708e41dcb0cfbc6.d: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs

/root/repo/target/debug/deps/libxstream_memory-9708e41dcb0cfbc6.rlib: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs

/root/repo/target/debug/deps/libxstream_memory-9708e41dcb0cfbc6.rmeta: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs

crates/memory-engine/src/lib.rs:
crates/memory-engine/src/engine.rs:
crates/memory-engine/src/pool.rs:
crates/memory-engine/src/queue.rs:
