/root/repo/target/debug/deps/fig15_io_parallel-5b3cb8f82c6aab56.d: crates/bench/src/bin/fig15_io_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_io_parallel-5b3cb8f82c6aab56.rmeta: crates/bench/src/bin/fig15_io_parallel.rs Cargo.toml

crates/bench/src/bin/fig15_io_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
