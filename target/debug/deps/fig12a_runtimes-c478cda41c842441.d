/root/repo/target/debug/deps/fig12a_runtimes-c478cda41c842441.d: crates/bench/src/bin/fig12a_runtimes.rs Cargo.toml

/root/repo/target/debug/deps/libfig12a_runtimes-c478cda41c842441.rmeta: crates/bench/src/bin/fig12a_runtimes.rs Cargo.toml

crates/bench/src/bin/fig12a_runtimes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
