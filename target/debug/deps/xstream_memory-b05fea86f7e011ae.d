/root/repo/target/debug/deps/xstream_memory-b05fea86f7e011ae.d: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_memory-b05fea86f7e011ae.rmeta: crates/memory-engine/src/lib.rs crates/memory-engine/src/engine.rs crates/memory-engine/src/pool.rs crates/memory-engine/src/queue.rs Cargo.toml

crates/memory-engine/src/lib.rs:
crates/memory-engine/src/engine.rs:
crates/memory-engine/src/pool.rs:
crates/memory-engine/src/queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
