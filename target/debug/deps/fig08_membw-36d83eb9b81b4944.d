/root/repo/target/debug/deps/fig08_membw-36d83eb9b81b4944.d: crates/bench/src/bin/fig08_membw.rs

/root/repo/target/debug/deps/fig08_membw-36d83eb9b81b4944: crates/bench/src/bin/fig08_membw.rs

crates/bench/src/bin/fig08_membw.rs:
