/root/repo/target/debug/deps/xstream-89eef0091530b7df.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxstream-89eef0091530b7df.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
