/root/repo/target/debug/deps/engines_agree-1778257100b3a50b.d: tests/engines_agree.rs

/root/repo/target/debug/deps/engines_agree-1778257100b3a50b: tests/engines_agree.rs

tests/engines_agree.rs:
