/root/repo/target/debug/deps/fig18_sort_vs_stream-76d5f27385f843d3.d: crates/bench/src/bin/fig18_sort_vs_stream.rs

/root/repo/target/debug/deps/fig18_sort_vs_stream-76d5f27385f843d3: crates/bench/src/bin/fig18_sort_vs_stream.rs

crates/bench/src/bin/fig18_sort_vs_stream.rs:
