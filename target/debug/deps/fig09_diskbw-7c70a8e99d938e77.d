/root/repo/target/debug/deps/fig09_diskbw-7c70a8e99d938e77.d: crates/bench/src/bin/fig09_diskbw.rs Cargo.toml

/root/repo/target/debug/deps/libfig09_diskbw-7c70a8e99d938e77.rmeta: crates/bench/src/bin/fig09_diskbw.rs Cargo.toml

crates/bench/src/bin/fig09_diskbw.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
