/root/repo/target/debug/deps/xstream_streams-510a801c902a6bd8.d: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs

/root/repo/target/debug/deps/libxstream_streams-510a801c902a6bd8.rlib: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs

/root/repo/target/debug/deps/libxstream_streams-510a801c902a6bd8.rmeta: crates/streams/src/lib.rs crates/streams/src/semi.rs crates/streams/src/source.rs crates/streams/src/wstream.rs

crates/streams/src/lib.rs:
crates/streams/src/semi.rs:
crates/streams/src/source.rs:
crates/streams/src/wstream.rs:
