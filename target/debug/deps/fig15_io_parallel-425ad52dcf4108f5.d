/root/repo/target/debug/deps/fig15_io_parallel-425ad52dcf4108f5.d: crates/bench/src/bin/fig15_io_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_io_parallel-425ad52dcf4108f5.rmeta: crates/bench/src/bin/fig15_io_parallel.rs Cargo.toml

crates/bench/src/bin/fig15_io_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
