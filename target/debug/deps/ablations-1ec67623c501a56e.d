/root/repo/target/debug/deps/ablations-1ec67623c501a56e.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-1ec67623c501a56e: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
