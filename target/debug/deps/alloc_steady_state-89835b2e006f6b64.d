/root/repo/target/debug/deps/alloc_steady_state-89835b2e006f6b64.d: tests/alloc_steady_state.rs Cargo.toml

/root/repo/target/debug/deps/liballoc_steady_state-89835b2e006f6b64.rmeta: tests/alloc_steady_state.rs Cargo.toml

tests/alloc_steady_state.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
