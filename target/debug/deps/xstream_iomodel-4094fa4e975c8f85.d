/root/repo/target/debug/deps/xstream_iomodel-4094fa4e975c8f85.d: crates/iomodel/src/lib.rs

/root/repo/target/debug/deps/libxstream_iomodel-4094fa4e975c8f85.rlib: crates/iomodel/src/lib.rs

/root/repo/target/debug/deps/libxstream_iomodel-4094fa4e975c8f85.rmeta: crates/iomodel/src/lib.rs

crates/iomodel/src/lib.rs:
