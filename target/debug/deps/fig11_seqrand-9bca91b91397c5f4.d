/root/repo/target/debug/deps/fig11_seqrand-9bca91b91397c5f4.d: crates/bench/src/bin/fig11_seqrand.rs

/root/repo/target/debug/deps/fig11_seqrand-9bca91b91397c5f4: crates/bench/src/bin/fig11_seqrand.rs

crates/bench/src/bin/fig11_seqrand.rs:
