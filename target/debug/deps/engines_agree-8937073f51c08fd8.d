/root/repo/target/debug/deps/engines_agree-8937073f51c08fd8.d: tests/engines_agree.rs Cargo.toml

/root/repo/target/debug/deps/libengines_agree-8937073f51c08fd8.rmeta: tests/engines_agree.rs Cargo.toml

tests/engines_agree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
