/root/repo/target/debug/deps/fig13_hyperanf-8c58776cd9a9c52d.d: crates/bench/src/bin/fig13_hyperanf.rs

/root/repo/target/debug/deps/fig13_hyperanf-8c58776cd9a9c52d: crates/bench/src/bin/fig13_hyperanf.rs

crates/bench/src/bin/fig13_hyperanf.rs:
