/root/repo/target/debug/deps/fig12a_runtimes-e26bc4f25851ac17.d: crates/bench/src/bin/fig12a_runtimes.rs

/root/repo/target/debug/deps/fig12a_runtimes-e26bc4f25851ac17: crates/bench/src/bin/fig12a_runtimes.rs

crates/bench/src/bin/fig12a_runtimes.rs:
