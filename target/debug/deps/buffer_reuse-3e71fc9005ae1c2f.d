/root/repo/target/debug/deps/buffer_reuse-3e71fc9005ae1c2f.d: tests/buffer_reuse.rs Cargo.toml

/root/repo/target/debug/deps/libbuffer_reuse-3e71fc9005ae1c2f.rmeta: tests/buffer_reuse.rs Cargo.toml

tests/buffer_reuse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
