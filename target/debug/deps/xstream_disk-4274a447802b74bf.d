/root/repo/target/debug/deps/xstream_disk-4274a447802b74bf.d: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs

/root/repo/target/debug/deps/xstream_disk-4274a447802b74bf: crates/disk-engine/src/lib.rs crates/disk-engine/src/engine.rs crates/disk-engine/src/vertices.rs

crates/disk-engine/src/lib.rs:
crates/disk-engine/src/engine.rs:
crates/disk-engine/src/vertices.rs:
