/root/repo/target/debug/deps/buffer_reuse-b57f546fceae983a.d: tests/buffer_reuse.rs

/root/repo/target/debug/deps/buffer_reuse-b57f546fceae983a: tests/buffer_reuse.rs

tests/buffer_reuse.rs:
