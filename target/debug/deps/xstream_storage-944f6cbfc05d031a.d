/root/repo/target/debug/deps/xstream_storage-944f6cbfc05d031a.d: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libxstream_storage-944f6cbfc05d031a.rmeta: crates/storage/src/lib.rs crates/storage/src/buffer.rs crates/storage/src/diskmodel.rs crates/storage/src/filestream.rs crates/storage/src/iostats.rs crates/storage/src/scratch.rs crates/storage/src/shuffle.rs crates/storage/src/writer.rs Cargo.toml

crates/storage/src/lib.rs:
crates/storage/src/buffer.rs:
crates/storage/src/diskmodel.rs:
crates/storage/src/filestream.rs:
crates/storage/src/iostats.rs:
crates/storage/src/scratch.rs:
crates/storage/src/shuffle.rs:
crates/storage/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
