/root/repo/target/debug/deps/fig26_iomodel-b46c5c8562b9b7a1.d: crates/bench/src/bin/fig26_iomodel.rs Cargo.toml

/root/repo/target/debug/deps/libfig26_iomodel-b46c5c8562b9b7a1.rmeta: crates/bench/src/bin/fig26_iomodel.rs Cargo.toml

crates/bench/src/bin/fig26_iomodel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
