/root/repo/target/debug/examples/out_of_core_wcc-7bab668e659af65a.d: examples/out_of_core_wcc.rs

/root/repo/target/debug/examples/out_of_core_wcc-7bab668e659af65a: examples/out_of_core_wcc.rs

examples/out_of_core_wcc.rs:
