/root/repo/target/debug/examples/streaming_ingest-657b80981bf80df6.d: examples/streaming_ingest.rs

/root/repo/target/debug/examples/streaming_ingest-657b80981bf80df6: examples/streaming_ingest.rs

examples/streaming_ingest.rs:
