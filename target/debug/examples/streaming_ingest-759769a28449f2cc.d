/root/repo/target/debug/examples/streaming_ingest-759769a28449f2cc.d: examples/streaming_ingest.rs Cargo.toml

/root/repo/target/debug/examples/libstreaming_ingest-759769a28449f2cc.rmeta: examples/streaming_ingest.rs Cargo.toml

examples/streaming_ingest.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
