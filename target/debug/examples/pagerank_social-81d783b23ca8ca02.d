/root/repo/target/debug/examples/pagerank_social-81d783b23ca8ca02.d: examples/pagerank_social.rs Cargo.toml

/root/repo/target/debug/examples/libpagerank_social-81d783b23ca8ca02.rmeta: examples/pagerank_social.rs Cargo.toml

examples/pagerank_social.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
