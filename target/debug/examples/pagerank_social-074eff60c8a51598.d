/root/repo/target/debug/examples/pagerank_social-074eff60c8a51598.d: examples/pagerank_social.rs

/root/repo/target/debug/examples/pagerank_social-074eff60c8a51598: examples/pagerank_social.rs

examples/pagerank_social.rs:
