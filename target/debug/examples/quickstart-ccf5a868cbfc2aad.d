/root/repo/target/debug/examples/quickstart-ccf5a868cbfc2aad.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ccf5a868cbfc2aad: examples/quickstart.rs

examples/quickstart.rs:
