/root/repo/target/debug/examples/out_of_core_wcc-ca3b5c05eaa62a6c.d: examples/out_of_core_wcc.rs Cargo.toml

/root/repo/target/debug/examples/libout_of_core_wcc-ca3b5c05eaa62a6c.rmeta: examples/out_of_core_wcc.rs Cargo.toml

examples/out_of_core_wcc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
